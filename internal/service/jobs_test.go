package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"recmech/internal/graph"
)

func jobTestService(t testing.TB, cfg Config) *Service {
	t.Helper()
	if cfg.DatasetBudget == 0 {
		cfg.DatasetBudget = 10
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	svc := New(cfg)
	g := graph.New(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {5, 6}, {6, 7}} {
		g.AddEdge(e[0], e[1])
	}
	if err := svc.AddGraph("g", g); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	return svc
}

func waitJob(t testing.TB, svc *Service, id string) JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := svc.WaitJob(ctx, id)
	if err != nil {
		t.Fatalf("WaitJob(%s): %v", id, err)
	}
	return info
}

func TestJobLifecycle(t *testing.T) {
	svc := jobTestService(t, Config{})
	info, err := svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5},
		{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.25},
		{Dataset: "g", Kind: KindTriangles, Privacy: "edge", Epsilon: 0.25},
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if info.ID == "" || (info.State != JobStateQueued && info.State != JobStateRunning) {
		t.Fatalf("submitted job: %+v", info)
	}
	// The whole batch is reserved atomically at submission.
	if st, _ := svc.Budget("g"); st.Reserved+st.Spent < 1.0-1e-9 {
		t.Fatalf("batch not fully reserved at submission: %+v", st)
	}

	final := waitJob(t, svc, info.ID)
	if final.State != JobStateDone {
		t.Fatalf("job state %q, want done: %+v", final.State, final)
	}
	if len(final.Items) != 3 {
		t.Fatalf("items: %+v", final.Items)
	}
	for i, it := range final.Items {
		if it.State != ItemStateDone || it.Result == nil {
			t.Fatalf("item %d not done: %+v", i, it)
		}
		if it.Index != i {
			t.Fatalf("item %d has index %d", i, it.Index)
		}
		if math.IsNaN(it.Result.Value) || math.IsInf(it.Result.Value, 0) {
			t.Fatalf("item %d value not finite: %v", i, it.Result.Value)
		}
	}
	st, _ := svc.Budget("g")
	if math.Abs(st.Spent-1.0) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("ledger after job: %+v", st)
	}

	// Lookup and listing agree; terminal jobs cannot be canceled.
	if got, err := svc.JobStatus(info.ID); err != nil || got.State != JobStateDone {
		t.Fatalf("JobStatus: %+v %v", got, err)
	}
	if _, err := svc.CancelJob(info.ID); !errors.Is(err, ErrJobFinished) {
		t.Fatalf("cancel of done job: %v, want ErrJobFinished", err)
	}
	if _, err := svc.JobStatus("job-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
}

// TestJobDuplicateItemsShareRelease submits a batch containing the same
// query twice: both items are reserved up front (all-or-nothing must not
// depend on execution-time luck), but the second replays the first's
// recorded release and its reservation is refunded.
func TestJobDuplicateItemsShareRelease(t *testing.T) {
	svc := jobTestService(t, Config{Workers: 1})
	info, err := svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5},
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5},
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	final := waitJob(t, svc, info.ID)
	if final.State != JobStateDone {
		t.Fatalf("job state %q: %+v", final.State, final)
	}
	if !final.Items[1].Result.Cached || final.Items[0].Result.Cached {
		t.Fatalf("expected second item to replay: %+v", final.Items)
	}
	if final.Items[0].Result.Value != final.Items[1].Result.Value {
		t.Fatalf("replayed value differs: %+v", final.Items)
	}
	st, _ := svc.Budget("g")
	if math.Abs(st.Spent-0.5) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("duplicate item spent fresh ε: %+v", st)
	}
}

func TestJobAtomicAdmission(t *testing.T) {
	svc := jobTestService(t, Config{DatasetBudget: 1.0})

	// The batch sums over the remaining budget: rejected atomically, typed,
	// with nothing spent or reserved.
	_, err := svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5},
		{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.5},
		{Dataset: "g", Kind: KindKStars, K: 3, Epsilon: 0.5},
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget batch: %v, want ErrBudgetExhausted", err)
	}
	st, _ := svc.Budget("g")
	if st.Spent != 0 || st.Reserved != 0 {
		t.Fatalf("rejected batch moved the ledger: %+v", st)
	}

	// Bad item anywhere rejects the whole batch with nothing reserved.
	_, err = svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.25},
		{Dataset: "g", Kind: "median", Epsilon: 0.25},
	})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad item: %v, want ErrBadRequest", err)
	}
	_, err = svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.25},
		{Dataset: "nope", Kind: KindTriangles, Epsilon: 0.25},
	})
	if !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset item: %v, want ErrUnknownDataset", err)
	}
	if _, err := svc.SubmitJob(nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch: %v, want ErrBadRequest", err)
	}
	st, _ = svc.Budget("g")
	if st.Spent != 0 || st.Reserved != 0 {
		t.Fatalf("rejected batches moved the ledger: %+v", st)
	}

	// An exactly affordable batch is admitted.
	info, err := svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5},
		{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.5},
	})
	if err != nil {
		t.Fatalf("affordable batch: %v", err)
	}
	if final := waitJob(t, svc, info.ID); final.State != JobStateDone {
		t.Fatalf("job: %+v", final)
	}
}

// TestJobActiveCap rejects submissions once MaxJobs jobs are active, with
// the whole batch's reservation rolled back, and admits again after the
// backlog drains.
func TestJobActiveCap(t *testing.T) {
	svc := jobTestService(t, Config{Workers: 1, MaxJobs: 1})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	svc.exec.testHookRunning = func() {
		once.Do(func() {
			close(started)
			<-gate
		})
	}
	info, err := svc.SubmitJob([]Request{{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5}})
	if err != nil {
		t.Fatalf("first job: %v", err)
	}
	<-started // the job is active, pinned on the blocked worker

	_, err = svc.SubmitJob([]Request{{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.5}})
	if !errors.Is(err, ErrJobsBusy) {
		t.Fatalf("saturated submit: %v, want ErrJobsBusy", err)
	}
	st, _ := svc.Budget("g")
	if st.Reserved > 0.5+1e-9 {
		t.Fatalf("rejected job kept its reservation: %+v", st)
	}

	close(gate)
	waitJob(t, svc, info.ID)
	if _, err := svc.SubmitJob([]Request{{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.5}}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestJobBatchSizeCap(t *testing.T) {
	svc := jobTestService(t, Config{MaxBatchItems: 2})
	_, err := svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.1},
		{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.1},
		{Dataset: "g", Kind: KindKStars, K: 3, Epsilon: 0.1},
	})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized batch: %v, want ErrBadRequest", err)
	}
}

// TestJobCancelRefundsUnstarted pins the batch refund semantics: cancel a
// running job and every item that has not started — plus the one in flight,
// which aborts through the job context — refunds its ε, leaving only ε of
// completed releases spent (none here).
func TestJobCancelRefundsUnstarted(t *testing.T) {
	svc := jobTestService(t, Config{Workers: 1})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	svc.exec.testHookRunning = func() {
		once.Do(func() {
			close(started)
			<-gate
		})
	}

	info, err := svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5},
		{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.5},
		{Dataset: "g", Kind: KindKStars, K: 3, Epsilon: 0.5},
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	<-started // item 0 occupies the only worker, items 1-2 pending

	canceled, err := svc.CancelJob(info.ID)
	if err != nil {
		t.Fatalf("CancelJob: %v", err)
	}
	if canceled.State != JobStateCanceled {
		t.Fatalf("state after cancel: %+v", canceled)
	}
	for _, i := range []int{1, 2} {
		if canceled.Items[i].State != ItemStateCanceled {
			t.Fatalf("pending item %d not canceled: %+v", i, canceled.Items[i])
		}
	}
	// Un-started items refund immediately, before the in-flight one settles.
	st, _ := svc.Budget("g")
	if st.Reserved > 0.5+1e-9 || st.Spent != 0 {
		t.Fatalf("pending items not refunded at cancel: %+v", st)
	}

	close(gate) // release item 0; its context is canceled, so it aborts
	final := waitJob(t, svc, info.ID)
	if final.State != JobStateCanceled {
		t.Fatalf("final state: %+v", final)
	}
	if final.Items[0].State != ItemStateCanceled {
		t.Fatalf("in-flight item after cancel: %+v", final.Items[0])
	}
	st, _ = svc.Budget("g")
	if st.Spent != 0 || st.Reserved != 0 {
		t.Fatalf("canceled job spent ε: %+v", st)
	}
	if n := svc.cache.Len(); n != 0 {
		t.Fatalf("canceled job recorded %d releases", n)
	}
	// Cancel is not retryable once terminal.
	if _, err := svc.CancelJob(info.ID); !errors.Is(err, ErrJobFinished) {
		t.Fatalf("second cancel: %v, want ErrJobFinished", err)
	}
}

// TestJobsListingDeterministic submits several jobs and checks the listing
// comes back in submission (id) order every time.
func TestJobsListingDeterministic(t *testing.T) {
	svc := jobTestService(t, Config{})
	var ids []string
	for i := 0; i < 5; i++ {
		info, err := svc.SubmitJob([]Request{{Dataset: "g", Kind: KindKStars, K: 2 + i%3, Epsilon: 0.01}})
		if err != nil {
			t.Fatalf("SubmitJob %d: %v", i, err)
		}
		ids = append(ids, info.ID)
		waitJob(t, svc, info.ID)
	}
	for round := 0; round < 3; round++ {
		list := svc.Jobs()
		if len(list) != len(ids) {
			t.Fatalf("listing has %d jobs, want %d", len(list), len(ids))
		}
		for i, j := range list {
			if j.ID != ids[i] {
				t.Fatalf("listing out of order at %d: %q, want %q", i, j.ID, ids[i])
			}
		}
	}
}

// TestJobRetentionEvictsOldestFinished bounds the job table: beyond MaxJobs
// the oldest finished jobs disappear from the listing (active jobs are kept).
func TestJobRetentionEvictsOldestFinished(t *testing.T) {
	svc := jobTestService(t, Config{MaxJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		info, err := svc.SubmitJob([]Request{{Dataset: "g", Kind: KindKStars, K: 2 + i%3, Epsilon: 0.01}})
		if err != nil {
			t.Fatalf("SubmitJob %d: %v", i, err)
		}
		waitJob(t, svc, info.ID)
		ids = append(ids, info.ID)
	}
	list := svc.Jobs()
	if len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(list))
	}
	if list[0].ID != ids[2] || list[1].ID != ids[3] {
		t.Fatalf("wrong survivors: %q %q, want %q %q", list[0].ID, list[1].ID, ids[2], ids[3])
	}
	if _, err := svc.JobStatus(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("evicted job still resolves: %v", err)
	}
}

func TestReserveManyAtomic(t *testing.T) {
	a := NewAccountant()
	if err := a.Grant("a", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := a.Grant("b", 0.4); err != nil {
		t.Fatal(err)
	}

	// Sum over one dataset's remainder rejects the whole batch.
	_, err := a.ReserveMany([]ReserveItem{
		{Dataset: "a", Epsilon: 0.5},
		{Dataset: "b", Epsilon: 0.3},
		{Dataset: "b", Epsilon: 0.3}, // b total 0.6 > 0.4
	})
	var be *BudgetError
	if !errors.As(err, &be) || be.Dataset != "b" {
		t.Fatalf("ReserveMany: %v, want BudgetError on b", err)
	}
	for _, name := range []string{"a", "b"} {
		if st, _ := a.Status(name); st.Reserved != 0 || st.Spent != 0 {
			t.Fatalf("failed batch left state on %s: %+v", name, st)
		}
	}

	// Unknown dataset rejects the whole batch.
	if _, err := a.ReserveMany([]ReserveItem{
		{Dataset: "a", Epsilon: 0.1},
		{Dataset: "ghost", Epsilon: 0.1},
	}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}

	// A feasible batch reserves every item; items settle independently.
	resvs, err := a.ReserveMany([]ReserveItem{
		{Dataset: "a", Epsilon: 0.5},
		{Dataset: "a", Epsilon: 0.5},
		{Dataset: "b", Epsilon: 0.4},
	})
	if err != nil {
		t.Fatalf("feasible batch: %v", err)
	}
	resvs[0].Commit()
	resvs[1].Refund()
	resvs[2].Commit()
	if st, _ := a.Status("a"); math.Abs(st.Spent-0.5) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("a after settle: %+v", st)
	}
	if st, _ := a.Status("b"); math.Abs(st.Spent-0.4) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("b after settle: %+v", st)
	}

	// Invalid ε anywhere rejects everything before any ledger is touched.
	if _, err := a.ReserveMany([]ReserveItem{
		{Dataset: "a", Epsilon: 0.1},
		{Dataset: "a", Epsilon: math.NaN()},
	}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("NaN item: %v", err)
	}
}

// TestReserveManyConcurrentNoOverdraw hammers batch and single reservations
// against one small ledger; whatever interleaving happens, the ledger can
// never go negative and must balance exactly at the end.
func TestReserveManyConcurrentNoOverdraw(t *testing.T) {
	a := NewAccountant()
	if err := a.Grant("d", 2.0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0.0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				resvs, err := a.ReserveMany([]ReserveItem{
					{Dataset: "d", Epsilon: 0.125},
					{Dataset: "d", Epsilon: 0.125},
				})
				if err != nil {
					return
				}
				resvs[0].Commit()
				resvs[1].Refund()
				mu.Lock()
				committed += 0.125
				mu.Unlock()
			} else {
				r, err := a.Reserve("d", 0.125)
				if err != nil {
					return
				}
				r.Commit()
				mu.Lock()
				committed += 0.125
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	st, _ := a.Status("d")
	if st.Reserved != 0 {
		t.Fatalf("reservations leaked: %+v", st)
	}
	if math.Abs(st.Spent-committed) > 1e-9 {
		t.Fatalf("spent %v, committed %v", st.Spent, committed)
	}
	if st.Spent > 2.0+1e-9 {
		t.Fatalf("overdrawn: %+v", st)
	}
}

// TestQueryCancelWhileQueuedRefunds is the satellite guarantee for single
// queries: a context-canceled query — here stuck behind a busy worker pool —
// refunds its ε reservation and never records a release.
func TestQueryCancelWhileQueuedRefunds(t *testing.T) {
	svc := jobTestService(t, Config{Workers: 1})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	svc.exec.testHookRunning = func() {
		once.Do(func() {
			close(started)
			<-gate
		})
	}

	occupantDone := make(chan error, 1)
	go func() {
		_, err := svc.Query(context.Background(), Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5})
		occupantDone <- err
	}()
	<-started // the only worker is now held

	ctx, cancel := context.WithCancel(context.Background())
	queuedDone := make(chan error, 1)
	go func() {
		_, err := svc.Query(ctx, Request{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.5})
		queuedDone <- err
	}()
	// The queued query has reserved ε and is waiting for the worker; give it
	// a moment to reach the semaphore, then hang up.
	for {
		st, _ := svc.Budget("g")
		if st.Reserved >= 1.0-1e-9 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-queuedDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: %v, want context.Canceled", err)
	}
	st, _ := svc.Budget("g")
	if st.Reserved > 0.5+1e-9 {
		t.Fatalf("canceled query kept its reservation: %+v", st)
	}

	close(gate)
	if err := <-occupantDone; err != nil {
		t.Fatalf("occupant query: %v", err)
	}
	st, _ = svc.Budget("g")
	if math.Abs(st.Spent-0.5) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("final ledger: %+v", st)
	}
	if n := svc.cache.Len(); n != 1 {
		t.Fatalf("release cache has %d entries, want 1 (the occupant's)", n)
	}
}

// TestWaiterSurvivesLeaderCancellation pins the coalescing fix: when the
// flight leader's client hangs up mid-query, a waiter with a live context
// must not inherit the leader's cancellation — it retries, leads its own
// flight, and gets an answer.
func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	svc := jobTestService(t, Config{Workers: 1})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	svc.exec.testHookRunning = func() {
		once.Do(func() {
			close(started)
			<-gate
		})
	}
	req := Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := svc.Query(leaderCtx, req)
		leaderDone <- err
	}()
	<-started // leader owns the flight and the only worker

	waiterDone := make(chan error, 1)
	var waiterResp Response
	go func() {
		var err error
		waiterResp, err = svc.Query(context.Background(), req)
		waiterDone <- err
	}()
	// Let the waiter join the leader's flight, then hang up the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	close(gate)

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader: %v, want context.Canceled", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter inherited the leader's cancellation: %v", err)
	}
	if waiterResp.Cached {
		t.Fatalf("waiter response claims a replay that never happened: %+v", waiterResp)
	}
	st, _ := svc.Budget("g")
	if math.Abs(st.Spent-0.5) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("ledger after leader cancel + waiter retry: %+v", st)
	}
}

// TestQueryCancellationHammer storms the service with a mix of canceled and
// live queries (run with -race); afterwards the ledger must balance exactly
// against the successful releases and hold nothing in reservation.
func TestQueryCancellationHammer(t *testing.T) {
	svc := jobTestService(t, Config{Workers: 2, DatasetBudget: 1e9})
	const n = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	successes := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 != 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(context.Background())
				if i%3 == 1 {
					cancel() // canceled before it even starts
				} else {
					defer cancel()
					go func() {
						time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
						cancel()
					}()
				}
			}
			// Distinct queries: no coalescing, each success spends fresh ε.
			req := Request{Dataset: "g", Kind: KindKStars, K: 2 + i%9, Epsilon: 0.25}
			resp, err := svc.Query(ctx, req)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("query %d: %v", i, err)
				}
				return
			}
			mu.Lock()
			if !resp.Cached {
				successes++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	st, _ := svc.Budget("g")
	if st.Reserved != 0 {
		t.Fatalf("reservations leaked: %+v", st)
	}
	// Releases recorded == fresh successes; canceled queries recorded none.
	// (Distinct k values mean successes may replay earlier successes, so
	// compare spend against the cache's record count.)
	if got := 0.25 * float64(svc.cache.Len()); math.Abs(st.Spent-got) > 1e-9 {
		t.Fatalf("spent %v but %d releases recorded", st.Spent, svc.cache.Len())
	}
	if svc.cache.Len() > successes {
		t.Fatalf("%d releases recorded for %d fresh successes", svc.cache.Len(), successes)
	}
}
