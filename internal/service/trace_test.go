package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"recmech/internal/graph"
	"recmech/internal/noise"
	"recmech/internal/trace"
)

// traceTestService returns an in-memory service over a small random graph,
// with full config control (the graph is registered as "g"). The graph is
// deliberately tiny: the k-star LP ladder's simplex cost grows steeply with
// node count, and these tests must stay affordable under -race.
func traceTestService(t testing.TB, cfg Config) *Service {
	t.Helper()
	svc := New(cfg)
	g := graph.RandomAverageDegree(noise.NewRand(7), 18, 4)
	if err := svc.AddGraph("g", g); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	return svc
}

// spanNames flattens a span tree into the set of names it contains.
func spanNames(n *trace.SpanNode, into map[string]int) {
	if n == nil {
		return
	}
	into[n.Name]++
	for _, c := range n.Children {
		spanNames(c, into)
	}
}

// checkNested fails the test if any child span lies outside its parent's
// [offset, offset+duration] window (with a small float tolerance).
func checkNested(t *testing.T, n *trace.SpanNode) {
	t.Helper()
	const eps = 1e-6
	for _, c := range n.Children {
		if c.OffsetMS+eps < n.OffsetMS || c.OffsetMS+c.DurationMS > n.OffsetMS+n.DurationMS+eps {
			t.Errorf("span %q [%.4f,%.4f] escapes parent %q [%.4f,%.4f]",
				c.Name, c.OffsetMS, c.OffsetMS+c.DurationMS, n.Name, n.OffsetMS, n.OffsetMS+n.DurationMS)
		}
		checkNested(t, c)
	}
}

// TestFreshQueryTraced checks the core policy: a query that compiles a fresh
// plan records a full span tree; warm repeats and replays at default
// settings record nothing.
func TestFreshQueryTraced(t *testing.T) {
	svc := traceTestService(t, Config{DatasetBudget: 10, Seed: 1})
	ctx := context.Background()

	if _, err := svc.Query(ctx, Request{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.4}); err != nil {
		t.Fatalf("fresh query: %v", err)
	}
	sums := svc.Traces()
	if len(sums) != 1 {
		t.Fatalf("fresh compile should record exactly one trace, got %d", len(sums))
	}
	if sums[0].Name != "query" {
		t.Fatalf("root span name = %q, want query", sums[0].Name)
	}
	td, err := svc.Trace(sums[0].ID)
	if err != nil {
		t.Fatalf("Trace(%s): %v", sums[0].ID, err)
	}
	names := map[string]int{}
	spanNames(td.Root, names)
	for _, want := range []string{"query", "budget.reserve", "budget.commit",
		"plan.compile", "enumerate", "encode", "release", "delta.search", "x.search", "noise.draw", "lp.solve"} {
		if names[want] == 0 {
			t.Errorf("trace is missing a %q span (have %v)", want, names)
		}
	}
	checkNested(t, td.Root)
	if got := td.Root.Attrs["outcome"]; got != "spent" {
		t.Errorf("root outcome = %v, want spent", got)
	}
	if got := td.Root.Attrs["planHit"]; got != false {
		t.Errorf("root planHit = %v, want false", got)
	}
	if got := td.Root.Attrs["dataset"]; got != "g" {
		t.Errorf("root dataset = %v, want g", got)
	}

	// Warm repeat at a new ε: plan-cached, untraced at default settings.
	if _, err := svc.Query(ctx, Request{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.3}); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	// Exact replay: release-cached, untraced.
	if _, err := svc.Query(ctx, Request{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.4}); err != nil {
		t.Fatalf("replay query: %v", err)
	}
	if got := len(svc.Traces()); got != 1 {
		t.Fatalf("warm and replay queries must not trace at defaults; have %d traces", got)
	}
	if st := svc.Tracer().TracerStats(); st.Finished != 1 || st.Retained != 1 {
		t.Fatalf("tracer stats after one traced query: %+v", st)
	}
}

// TestPrepareTraceAndProfile checks that a fresh prepare is traced and
// returns the plan's compile profile, and that a prepare hitting the plan
// cache returns the retained profile without recording a trace.
func TestPrepareTraceAndProfile(t *testing.T) {
	svc := traceTestService(t, Config{DatasetBudget: 10, Seed: 1})
	ctx := context.Background()

	info, err := svc.Prepare(ctx, Request{Dataset: "g", Kind: KindTriangles})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if info.TraceID == "" {
		t.Fatal("fresh prepare did not record a trace")
	}
	if info.Compile == nil || info.Compile.Kind != KindTriangles || info.Compile.TotalSeconds <= 0 {
		t.Fatalf("fresh prepare compile profile: %+v", info.Compile)
	}
	td, err := svc.Trace(info.TraceID)
	if err != nil {
		t.Fatalf("Trace(%s): %v", info.TraceID, err)
	}
	if td.Root.Name != "prepare" {
		t.Fatalf("prepare root span = %q", td.Root.Name)
	}
	names := map[string]int{}
	spanNames(td.Root, names)
	for _, want := range []string{"plan.compile", "plan.warm", "delta.search", "x.search"} {
		if names[want] == 0 {
			t.Errorf("prepare trace missing %q (have %v)", want, names)
		}
	}

	again, err := svc.Prepare(ctx, Request{Dataset: "g", Kind: KindTriangles})
	if err != nil {
		t.Fatalf("second prepare: %v", err)
	}
	if !again.AlreadyPrepared || again.TraceID != "" {
		t.Fatalf("second prepare should hit untraced: %+v", again)
	}
	if again.Compile == nil || again.Compile.TotalSeconds != info.Compile.TotalSeconds {
		t.Fatalf("retained profile diverged: %+v vs %+v", again.Compile, info.Compile)
	}

	// The executor aggregate saw exactly one compile.
	if cs := svc.exec.CompileStats(); cs.Count != 1 || cs.Last == nil || cs.Last.Kind != KindTriangles {
		t.Fatalf("CompileStats after one compile: %+v", cs)
	}
}

// TestTraceHTTP drives the trace surface over HTTP: the response header on
// traced requests (and its absence on warm ones), the list and fetch
// endpoints, and the typed 404.
func TestTraceHTTP(t *testing.T) {
	svc := traceTestService(t, Config{DatasetBudget: 10, Seed: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, raw
	}

	resp, raw := post("/v2/query", `{"dataset":"g","kind":"triangles","epsilon":0.5}`)
	if resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}
	tid := resp.Header.Get("X-Recmech-Trace-Id")
	if tid == "" {
		t.Fatal("fresh query response carries no X-Recmech-Trace-Id")
	}
	if bytes.Contains(raw, []byte("traceId")) {
		t.Fatalf("trace ID leaked into the Response body (it is the WAL replay payload): %s", raw)
	}

	// Warm query: no trace, no header.
	resp, raw = post("/v2/query", `{"dataset":"g","kind":"triangles","epsilon":0.25}`)
	if resp.StatusCode != 200 {
		t.Fatalf("warm query: %d %s", resp.StatusCode, raw)
	}
	if h := resp.Header.Get("X-Recmech-Trace-Id"); h != "" {
		t.Fatalf("warm query unexpectedly traced: %q", h)
	}

	// The list endpoint returns the fresh query's trace, newest first.
	lresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []trace.Summary `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Traces) != 1 || list.Traces[0].ID != tid {
		t.Fatalf("GET /v1/traces = %+v, want the one trace %s", list.Traces, tid)
	}

	gresp, err := http.Get(ts.URL + "/v1/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	var td trace.TraceData
	if err := json.NewDecoder(gresp.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != 200 || td.ID != tid || td.Root == nil || td.Root.Name != "query" {
		t.Fatalf("GET /v1/traces/%s: %d %+v", tid, gresp.StatusCode, td)
	}

	nresp, err := http.Get(ts.URL + "/v1/traces/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	nraw, _ := io.ReadAll(nresp.Body)
	nresp.Body.Close()
	if nresp.StatusCode != 404 || !bytes.Contains(nraw, []byte("unknown_trace")) {
		t.Fatalf("unknown trace: %d %s", nresp.StatusCode, nraw)
	}
}

// TestJobItemsTraced checks that every async job item records a trace —
// replays included — and that the per-item trace IDs surface in the job
// snapshot and resolve to retained traces.
func TestJobItemsTraced(t *testing.T) {
	svc := traceTestService(t, Config{DatasetBudget: 10, Seed: 1})
	ctx := context.Background()

	// Pre-release one query so the job's second item is a pure replay.
	if _, err := svc.Query(ctx, Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}

	info, err := svc.SubmitJob([]Request{
		{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.3},
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5}, // replay
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	done, err := svc.WaitJob(ctx, info.ID)
	if err != nil || done.State != JobStateDone {
		t.Fatalf("job did not finish cleanly: %+v, %v", done, err)
	}
	seen := map[string]bool{}
	for i, it := range done.Items {
		if it.TraceID == "" {
			t.Fatalf("item %d has no trace ID: %+v", i, it)
		}
		if seen[it.TraceID] {
			t.Fatalf("trace ID %s reused across items", it.TraceID)
		}
		seen[it.TraceID] = true
		td, err := svc.Trace(it.TraceID)
		if err != nil {
			t.Fatalf("item %d trace %s: %v", i, it.TraceID, err)
		}
		wantOutcome := "spent"
		if i == 1 {
			wantOutcome = "replayed"
		}
		if got := td.Root.Attrs["outcome"]; got != wantOutcome {
			t.Errorf("item %d outcome = %v, want %s", i, got, wantOutcome)
		}
	}
}

// TestWarmSampling checks TraceSampleEvery: at 1-in-1 every warm query is
// traced too.
func TestWarmSampling(t *testing.T) {
	svc := traceTestService(t, Config{DatasetBudget: 10, Seed: 1, TraceSampleEvery: 1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		eps := 0.1 * float64(i+1)
		if _, err := svc.Query(ctx, Request{Dataset: "g", Kind: KindTriangles, Epsilon: eps}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(svc.Traces()); got != 3 {
		t.Fatalf("with TraceSampleEvery=1 all 3 queries should trace, got %d", got)
	}
}

// TestSlowQueryLogService wires the slow-query log at a threshold every
// query beats and checks one structured line per traced query lands.
func TestSlowQueryLogService(t *testing.T) {
	svc := traceTestService(t, Config{DatasetBudget: 10, Seed: 1})
	var buf syncBuffer
	svc.Tracer().SetSlowQueryLog(time.Nanosecond, &buf)
	if _, err := svc.Query(context.Background(), Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"msg":"slow_query"`) {
		t.Fatalf("slow-query log did not fire: %q", line)
	}
	var rec struct {
		TraceID string          `json:"traceId"`
		Trace   trace.TraceData `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query line is not one JSON object: %v (%q)", err, line)
	}
	if rec.TraceID == "" || rec.Trace.Root == nil {
		t.Fatalf("slow-query record incomplete: %+v", rec)
	}
}

// syncBuffer is an io.Writer safe for the tracer's Finish goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestAccessLogCarriesTraceID checks the structured access log joins
// against the trace store via the traceId field.
func TestAccessLogCarriesTraceID(t *testing.T) {
	svc := traceTestService(t, Config{DatasetBudget: 10, Seed: 1})
	var buf syncBuffer
	logger, err := NewAccessLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(WithAccessLog(NewHandler(svc), logger))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"dataset":"g","kind":"kstars","k":2,"epsilon":0.4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tid := resp.Header.Get("X-Recmech-Trace-Id")
	if tid == "" {
		t.Fatal("fresh query carries no trace header")
	}
	var entry AccessEntry
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("access log line: %v (%q)", err, buf.String())
	}
	if entry.TraceID != tid {
		t.Fatalf("access log traceId = %q, header = %q", entry.TraceID, tid)
	}
}

// TestTraceHammer exercises tracing under real concurrency (run with
// -race): distinct fresh compiles, coalesced identical compiles, warm
// repeats, and a small retention ring, all at once. Every trace must keep a
// well-nested tree, IDs must never collide, and the ring must stay bounded.
func TestTraceHammer(t *testing.T) {
	const ring = 8
	svc := New(Config{DatasetBudget: 1e9, Seed: 1, Workers: 4, TraceRingEntries: ring})
	g := graph.RandomAverageDegree(noise.NewRand(7), 18, 4)
	if err := svc.AddGraph("g", g); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				// Workers pair up on k (w/2): every compile has at least one
				// coalescing or plan-cache-racing twin.
				k := 2 + w/2
				eps := 0.001 * float64(w*131+i+1)
				if _, err := svc.Query(ctx, Request{Dataset: "g", Kind: KindKStars, K: k, Epsilon: eps}); err != nil {
					errs <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	sums := svc.Traces()
	if len(sums) > ring {
		t.Fatalf("ring holds %d traces, bound is %d", len(sums), ring)
	}
	seen := map[string]bool{}
	for _, s := range sums {
		if seen[s.ID] {
			t.Fatalf("duplicate trace ID %s", s.ID)
		}
		seen[s.ID] = true
		td, err := svc.Trace(s.ID)
		if err != nil {
			t.Fatalf("retained trace %s not fetchable: %v", s.ID, err)
		}
		if td.Root == nil || td.Root.Name != "query" {
			t.Fatalf("trace %s malformed root: %+v", s.ID, td.Root)
		}
		checkNested(t, td.Root)
	}
	st := svc.Tracer().TracerStats()
	if st.Started != st.Finished {
		t.Fatalf("tracer leaked traces: %+v", st)
	}
	if st.Retained > ring {
		t.Fatalf("retained %d > ring %d", st.Retained, ring)
	}
}
