package service

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestReserveCommitSpends(t *testing.T) {
	a := NewAccountant()
	a.Grant("d", 2)
	resv, err := a.Reserve("d", 0.5)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	st, _ := a.Status("d")
	if st.Reserved != 0.5 || st.Spent != 0 || st.Remaining != 1.5 {
		t.Fatalf("after reserve: %+v", st)
	}
	resv.Commit()
	st, _ = a.Status("d")
	if st.Reserved != 0 || st.Spent != 0.5 || st.Remaining != 1.5 {
		t.Fatalf("after commit: %+v", st)
	}
}

func TestRefundRestoresBudget(t *testing.T) {
	a := NewAccountant()
	a.Grant("d", 1)
	resv, err := a.Reserve("d", 1)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if _, err := a.Reserve("d", 0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted while fully reserved, got %v", err)
	}
	resv.Refund()
	st, _ := a.Status("d")
	if st.Spent != 0 || st.Reserved != 0 || st.Remaining != 1 {
		t.Fatalf("after refund: %+v", st)
	}
	if _, err := a.Reserve("d", 1); err != nil {
		t.Fatalf("Reserve after refund: %v", err)
	}
}

func TestBudgetExhaustedIsTyped(t *testing.T) {
	a := NewAccountant()
	a.Grant("d", 1)
	if _, err := a.Reserve("d", 0.75); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	_, err := a.Reserve("d", 0.5)
	if err == nil {
		t.Fatal("want rejection")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T", err)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatal("want errors.Is(err, ErrBudgetExhausted)")
	}
	if be.Dataset != "d" || be.Requested != 0.5 || math.Abs(be.Remaining-0.25) > 1e-12 {
		t.Fatalf("error fields: %+v", be)
	}
}

func TestReserveExactlyExhaustsDespiteFloatDust(t *testing.T) {
	a := NewAccountant()
	a.Grant("d", 2)
	// Twenty reservations of 0.1 must exactly consume a budget of 2.0 even
	// though 0.1 is not exactly representable.
	for i := 0; i < 20; i++ {
		resv, err := a.Reserve("d", 0.1)
		if err != nil {
			t.Fatalf("reservation %d: %v", i, err)
		}
		resv.Commit()
	}
	if _, err := a.Reserve("d", 0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("21st reservation: want exhausted, got %v", err)
	}
}

func TestReserveUnknownDataset(t *testing.T) {
	a := NewAccountant()
	if _, err := a.Reserve("nope", 0.5); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("want ErrUnknownDataset, got %v", err)
	}
	if _, err := a.Reserve("nope", -1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest for ε ≤ 0, got %v", err)
	}
}

// A NaN ε compares false with everything, so naive guards wave it through
// and a single "reserved += NaN" would disable budget enforcement forever.
func TestReserveRejectsNonFiniteEpsilon(t *testing.T) {
	a := NewAccountant()
	a.Grant("d", 1)
	for _, eps := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := a.Reserve("d", eps); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Reserve(%v): want ErrBadRequest, got %v", eps, err)
		}
	}
	st, _ := a.Status("d")
	if st.Reserved != 0 || st.Spent != 0 || st.Remaining != 1 {
		t.Fatalf("ledger moved: %+v", st)
	}
	if _, err := a.Reserve("d", 0.5); err != nil {
		t.Fatalf("ledger poisoned: %v", err)
	}
}

func TestDoubleSettlePanics(t *testing.T) {
	a := NewAccountant()
	a.Grant("d", 1)
	resv, err := a.Reserve("d", 0.5)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	resv.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("second settlement must panic")
		}
	}()
	resv.Refund()
}

// TestAccountantConcurrentHammer drives the ledger from many goroutines and
// checks the books balance: spent equals ε × commits, nothing stays
// reserved, and the total is never overdrawn. Run under -race.
func TestAccountantConcurrentHammer(t *testing.T) {
	const (
		workers = 32
		rounds  = 50
		eps     = 0.5
		total   = 100.0
	)
	a := NewAccountant()
	a.Grant("d", total)
	var commits, rejects atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resv, err := a.Reserve("d", eps)
				if err != nil {
					if !errors.Is(err, ErrBudgetExhausted) {
						t.Errorf("unexpected error: %v", err)
					}
					rejects.Add(1)
					continue
				}
				if (w+i)%3 == 0 { // a third of the queries "fail" and refund
					resv.Refund()
				} else {
					resv.Commit()
					commits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	st, _ := a.Status("d")
	if st.Reserved != 0 {
		t.Fatalf("reserved ε leaked: %+v", st)
	}
	wantSpent := eps * float64(commits.Load())
	if math.Abs(st.Spent-wantSpent) > 1e-6 {
		t.Fatalf("spent %g, want %g (%d commits)", st.Spent, wantSpent, commits.Load())
	}
	if st.Spent > total+budgetSlack {
		t.Fatalf("overdrawn: spent %g of %g", st.Spent, total)
	}
	// The workload attempts 1600 × 0.5 = 800 ε against a budget of 100, so
	// exhaustion must actually have been exercised.
	if rejects.Load() == 0 {
		t.Fatal("hammer never hit the budget limit; workload too small")
	}
}
