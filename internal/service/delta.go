package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"recmech/internal/graph"
	"recmech/internal/plan"
	"recmech/internal/store"
	"recmech/internal/trace"
)

// AppendRequest is the body of PATCH /v1/datasets/{name}: a dataset delta.
// Exactly one of the two fields must be set, matching the dataset's kind.
// Edges is edge-list text (graph.ReadEdgeList format — a "# nodes N" header
// may grow the node universe) added to a graph dataset; Rows maps table
// names to row text (query.LoadTable row syntax, no header line) appended to
// a relational dataset's existing tables.
type AppendRequest struct {
	Edges string            `json:"edges,omitempty"`
	Rows  map[string]string `json:"rows,omitempty"`
}

// maxRewarmPlans bounds the background re-warm pass after an append: at most
// this many of the predecessor generation's cached plans are advanced to the
// new generation. Appends must stay cheap on the admin path no matter how
// hot the plan cache is; plans beyond the bound simply compile fresh on
// their next query.
const maxRewarmPlans = 8

// AppendDataset applies a delta to a registered dataset, advancing it one
// micro-generation. Graph appends add edges (and optionally nodes) to the
// current snapshot; on a durable service the delta itself is journalled in
// the WAL beside the release records — replayable history, the full
// edge-list is only re-materialized once Config.DeltaKeepWindow deltas
// accumulate. Relational appends add rows to existing tables and always
// re-materialize (SQL plans have no incremental path), so they require a
// durable store.
//
// The append then maintains cache lineage: release- and plan-cache entries
// of generations no longer reachable are purged eagerly, and up to
// maxRewarmPlans of the predecessor's cached plans are advanced to the new
// generation in the background via plan.Advance — the delta-compile path
// that makes the next query on a touched workload pay microseconds, not a
// fresh compile.
func (s *Service) AppendDataset(name string, ap AppendRequest) (DatasetInfo, error) {
	canon := canonName(name)
	if err := store.ValidateName(canon); err != nil {
		return DatasetInfo{}, badRequestf("%v", err)
	}
	hasEdges := strings.TrimSpace(ap.Edges) != ""
	if hasEdges == (len(ap.Rows) > 0) {
		return DatasetInfo{}, badRequestf("append body needs exactly one of \"edges\" (graph dataset) or \"rows\" (relational dataset)")
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	ds, err := s.reg.Get(canon)
	if err != nil {
		return DatasetInfo{}, err
	}
	root := s.tr.Start("dataset.append")
	root.Str("dataset", canon)
	var info DatasetInfo
	if hasEdges {
		info, err = s.appendGraph(root, ds, ap)
	} else {
		info, err = s.appendTables(root, ds, ap)
	}
	if err != nil {
		root.Str("error", err.Error())
	}
	s.tr.Finish(root)
	return info, err
}

// appendGraph applies an edge delta under adminMu. Durable flow is
// journal-before-memory: the WAL delta record lands first, so a crash
// between journal and registration replays the append at boot rather than
// losing it, and the release journal can never hold a key for a generation
// the WAL cannot reconstruct.
func (s *Service) appendGraph(root *trace.Span, ds *Dataset, ap AppendRequest) (DatasetInfo, error) {
	if ds.Graph == nil {
		return DatasetInfo{}, badRequestf("dataset %q is relational; append rows, not edges", ds.Name)
	}
	dg, err := graph.ReadEdgeList(strings.NewReader(ap.Edges))
	if err != nil {
		return DatasetInfo{}, badRequestf("graph append: %v", err)
	}
	added := dg.Edges()
	if len(added) == 0 && dg.NumNodes() <= ds.Graph.NumNodes() {
		return DatasetInfo{}, badRequestf("append carries no new edges or nodes")
	}
	g2 := grownClone(ds.Graph, dg.NumNodes())
	dup := 0
	for _, e := range added {
		if g2.HasEdge(e.U, e.V) {
			dup++
			continue
		}
		g2.AddEdge(e.U, e.V)
	}
	if dup > 0 {
		return DatasetInfo{}, badRequestf("append repeats %d edge(s) already present", dup)
	}
	root.Int("edges", int64(len(added)))

	var d2 *Dataset
	if s.store != nil && ds.Durable {
		newGen := ds.Gen + 1
		payload, err := json.Marshal(ap)
		if err != nil {
			return DatasetInfo{}, err
		}
		if err := s.store.AppendDelta(ds.Name, newGen, payload); err != nil {
			return DatasetInfo{}, err
		}
		// Keep-window: once enough deltas pile up, fold them into a full
		// edge-list materialization at exactly the current generation and
		// drop the journal entries — recovery then loads one file instead
		// of replaying a long chain. Best-effort: a failed materialize
		// leaves the (fully sufficient) delta chain in place.
		if len(s.store.DeltasFor(ds.Name)) >= s.cfg.DeltaKeepWindow {
			var buf bytes.Buffer
			if err := g2.WriteEdgeList(&buf); err == nil {
				if _, err := s.store.Datasets().PutGraphFloor(ds.Name, buf.Bytes(), newGen); err == nil {
					_ = s.store.DropDeltas(ds.Name, newGen)
					root.Bool("materialized", true)
				}
			}
		}
		d2 = s.reg.PutGraphVersion(ds.Name, g2, newGen)
	} else {
		d2 = s.reg.PutGraph(ds.Name, g2)
	}
	root.Int("gen", int64(d2.Gen))
	s.met.appends.Inc()

	rewarmed := s.rewarmPlans(ds, d2, plan.Delta{Added: added})
	root.Int("rewarm", int64(rewarmed))
	purged := s.purgeStale(d2.Name, currentKeyPrefix(d2))
	root.Int("purged", int64(purged))
	return s.describe(d2), nil
}

// appendTables applies a row delta to a relational dataset. There is no
// incremental compile path for SQL (plan.Advance falls back anyway), so the
// combined tables are re-materialized immediately — which requires the
// durable store's copy of the current table texts.
func (s *Service) appendTables(root *trace.Span, ds *Dataset, ap AppendRequest) (DatasetInfo, error) {
	if ds.DB == nil {
		return DatasetInfo{}, badRequestf("dataset %q is a graph; append edges, not rows", ds.Name)
	}
	if s.store == nil || !ds.Durable {
		return DatasetInfo{}, badRequestf("relational appends require a durable store (-data-dir)")
	}
	texts, _, err := s.store.Datasets().RawTables(ds.Name)
	if err != nil {
		return DatasetInfo{}, err
	}
	rows := 0
	for tbl, add := range ap.Rows {
		base, ok := texts[strings.ToLower(strings.TrimSpace(tbl))]
		if !ok {
			return DatasetInfo{}, badRequestf("append to unknown table %q", tbl)
		}
		if strings.TrimSpace(add) == "" {
			return DatasetInfo{}, badRequestf("append to table %q carries no rows", tbl)
		}
		texts[strings.ToLower(strings.TrimSpace(tbl))] = appendRows(base, add)
		rows++
	}
	root.Int("tables", int64(rows))
	df, err := s.store.Datasets().PutTablesFloor(ds.Name, texts, ds.Gen+1)
	if err != nil {
		if errors.Is(err, store.ErrBadData) {
			return DatasetInfo{}, badRequestf("relational append to %q: %v", ds.Name, err)
		}
		return DatasetInfo{}, err
	}
	d2, err := s.registerFile(df)
	if err != nil {
		return DatasetInfo{}, err
	}
	root.Int("gen", int64(d2.Gen))
	s.met.appends.Inc()
	purged := s.purgeStale(d2.Name, currentKeyPrefix(d2))
	root.Int("purged", int64(purged))
	return s.describe(d2), nil
}

// rewarmPlans advances up to maxRewarmPlans of the old generation's cached
// plans to the new generation. Collection is synchronous (under adminMu, via
// Peek — no hit-ratio skew, no flights joined); the Advance calls run in
// background goroutines tracked by s.rewarmWG, publishing through the plan
// cache's singleflight so a concurrent query for the same key coalesces
// instead of double-compiling.
func (s *Service) rewarmPlans(old, cur *Dataset, d plan.Delta) int {
	if cur.Graph == nil {
		return 0
	}
	oldPrefix := fmt.Sprintf("%s%s%d|", old.Name, genTag(old), old.Gen)
	newPrefix := currentKeyPrefix(cur)
	type job struct {
		p      *plan.Plan
		newKey string
	}
	var jobs []job
	for _, k := range s.exec.plans.Keys() {
		if !strings.HasPrefix(k, oldPrefix) {
			continue
		}
		pl, ok := s.exec.plans.Peek(k)
		if !ok || pl == nil || pl.Spec() == nil {
			continue
		}
		jobs = append(jobs, job{p: pl, newKey: newPrefix + k[len(oldPrefix):]})
		if len(jobs) >= maxRewarmPlans {
			break
		}
	}
	src := plan.Source{Graph: cur.Graph}
	for _, j := range jobs {
		s.rewarmWG.Add(1)
		go func(j job) {
			defer s.rewarmWG.Done()
			_, _, _ = s.exec.plans.Do(context.Background(), j.newKey, func() (*plan.Plan, error) {
				np, prof, err := j.p.Advance(context.Background(), src, d, s.exec.compileWorkers())
				if err == nil && prof.Fallback {
					// A fallback recompile is a fresh compile in all but
					// name; record it where fresh compiles are recorded.
					s.exec.compiles.note(np.Profile())
				}
				return np, err
			})
		}(j)
	}
	return len(jobs)
}

// currentKeyPrefix is the cache-key prefix of a dataset's current
// generation — the byte-frozen "<name><genTag><gen>|" stem both the release
// and the plan key formats open with.
func currentKeyPrefix(d *Dataset) string {
	return fmt.Sprintf("%s%s%d|", d.Name, genTag(d), d.Gen)
}

// purgeStale drops release- and plan-cache entries of name's unreachable
// generations: every key of the dataset except those under keepPrefix
// (keepPrefix "" keeps nothing — the delete path). Durable release records
// pruned here were already fenced by the generation segment of the key; the
// purge reclaims the memory eagerly instead of waiting for FIFO eviction.
//
// The predicate matches "<name>@…" and "<name>#…" exactly: '@' and '#' are
// not valid dataset-name bytes (store.ValidateName), so a dataset whose name
// extends another's ("graph2" vs "graph") can never be caught by its prefix.
func (s *Service) purgeStale(name, keepPrefix string) int {
	pred := func(key string) bool {
		rest, ok := strings.CutPrefix(key, name)
		if !ok || rest == "" || (rest[0] != '@' && rest[0] != '#') {
			return false
		}
		return keepPrefix == "" || !strings.HasPrefix(key, keepPrefix)
	}
	return s.cache.RemoveFunc(pred) + s.exec.plans.RemoveFunc(pred)
}

// grownClone copies g into a graph of at least n nodes.
func grownClone(g *graph.Graph, n int) *graph.Graph {
	if n < g.NumNodes() {
		n = g.NumNodes()
	}
	g2 := graph.New(n)
	for _, e := range g.Edges() {
		g2.AddEdge(e.U, e.V)
	}
	return g2
}

// appendRows joins existing table text with appended row lines, normalizing
// the seam to exactly one newline so the result is what the operator would
// have uploaded whole.
func appendRows(base []byte, add string) []byte {
	out := bytes.TrimRight(base, "\n")
	out = append(out, '\n')
	out = append(out, strings.TrimRight(add, "\n")...)
	out = append(out, '\n')
	return out
}

// replayDeltas extends a boot-loaded graph dataset with the WAL's journalled
// deltas beyond its materialized version, registering each micro-generation
// at its recorded version so persisted release keys keep replaying. A delta
// that fails to parse stops the chain for that dataset (versions must stay
// contiguous) and is reported as a boot warning.
func (s *Service) replayDeltas(df *store.DatasetFile) []error {
	var warns []error
	for _, del := range s.store.DeltasFor(df.Name) {
		if del.Version <= df.Version {
			continue
		}
		cur, err := s.reg.Get(df.Name)
		if err != nil {
			break
		}
		var ap AppendRequest
		if err := json.Unmarshal(del.Payload, &ap); err != nil {
			warns = append(warns, fmt.Errorf("service: dataset %q: delta v%d undecodable, later deltas skipped: %w", df.Name, del.Version, err))
			break
		}
		dg, err := graph.ReadEdgeList(strings.NewReader(ap.Edges))
		if err != nil {
			warns = append(warns, fmt.Errorf("service: dataset %q: delta v%d unreadable, later deltas skipped: %w", df.Name, del.Version, err))
			break
		}
		g2 := grownClone(cur.Graph, dg.NumNodes())
		for _, e := range dg.Edges() {
			g2.AddEdge(e.U, e.V)
		}
		s.reg.PutGraphVersion(df.Name, g2, del.Version)
	}
	return warns
}
