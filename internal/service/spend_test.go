package service

import (
	"context"
	"math"
	"testing"
	"time"

	"recmech/internal/graph"
)

func TestEpsWindowSlidingDecay(t *testing.T) {
	w := newEpsWindow(time.Hour)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	w.add(t0, 2.0)
	w.add(t0.Add(10*time.Minute), 1.0)
	if got := w.sum(t0.Add(10 * time.Minute)); got != 3.0 {
		t.Errorf("sum inside window = %g, want 3", got)
	}
	// 50 minutes on, the t0 commit is still inside the trailing hour.
	if got := w.sum(t0.Add(50 * time.Minute)); got != 3.0 {
		t.Errorf("sum at 50m = %g, want 3", got)
	}
	// 61 minutes on, the t0 bucket has aged out but the 10-minute one holds.
	if got := w.sum(t0.Add(61 * time.Minute)); got != 1.0 {
		t.Errorf("sum at 61m = %g, want 1", got)
	}
	// Two hours on, everything has aged out — including via ring lap, where
	// a new add lands in a slot whose stale epoch must be reset, not summed.
	if got := w.sum(t0.Add(2 * time.Hour)); got != 0 {
		t.Errorf("sum at 2h = %g, want 0", got)
	}
	w.add(t0.Add(2*time.Hour), 0.5)
	if got := w.sum(t0.Add(2 * time.Hour)); got != 0.5 {
		t.Errorf("sum after lap = %g, want 0.5", got)
	}
	if got := w.ratePerHour(t0.Add(2 * time.Hour)); got != 0.5 {
		t.Errorf("ratePerHour = %g, want 0.5 (window ε over full width)", got)
	}
}

func TestTTLSeconds(t *testing.T) {
	if got := ttlSeconds(0, 1, time.Hour); got != 0 {
		t.Errorf("exhausted budget: ttl = %g, want 0", got)
	}
	if got := ttlSeconds(-0.1, 1, time.Hour); got != 0 {
		t.Errorf("overdrawn budget: ttl = %g, want 0", got)
	}
	if got := ttlSeconds(5, 0, time.Hour); !math.IsInf(got, 1) {
		t.Errorf("idle window: ttl = %g, want +Inf", got)
	}
	// Burning 2ε/hour with 4ε left: two hours of runway.
	if got := ttlSeconds(4, 2, time.Hour); got != 2*3600 {
		t.Errorf("ttl = %g, want %d", got, 2*3600)
	}
}

// TestBurnRateSurvivesClockNotUptime is the restart-artifact regression
// test: the burn rate must be window ε over the window width, never ε over
// process uptime — a process two seconds into its life that commits 0.5ε
// used to report a ~900ε/hour "burn" and page whoever owned the alert.
func TestBurnRateSurvivesClockNotUptime(t *testing.T) {
	svc := New(Config{DatasetBudget: 10, DefaultEpsilon: 0.5, Workers: 2, Seed: 1})
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}} {
		g.AddEdge(e[0], e[1])
	}
	if err := svc.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	// Inject the spend clock. The fake starts "now" and only moves when the
	// test says so — queries land instantly from the window's point of view.
	fake := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	svc.met.now = func() time.Time { return fake }

	if _, err := svc.Query(context.Background(), Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.5}); err != nil {
		t.Fatalf("Query: %v", err)
	}
	st, err := svc.DatasetStats("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.EpsilonPerHour != 0.5 {
		t.Errorf("burn right after one 0.5ε query = %g ε/h, want 0.5 (full-window denominator)", st.EpsilonPerHour)
	}
	if st.SpendWindowSeconds != 3600 {
		t.Errorf("SpendWindowSeconds = %g, want 3600", st.SpendWindowSeconds)
	}
	if st.BudgetTTLSeconds == nil {
		t.Fatal("BudgetTTLSeconds omitted while the window is non-empty")
	}
	// 9.5ε left at 0.5ε/hour: 19 hours of runway.
	if got, want := *st.BudgetTTLSeconds, 19*3600.0; math.Abs(got-want) > 1 {
		t.Errorf("BudgetTTLSeconds = %g, want %g", got, want)
	}
	if st.SpendByFamily[KindTriangles] != 0.5 {
		t.Errorf("SpendByFamily[triangles] = %g, want 0.5", st.SpendByFamily[KindTriangles])
	}

	// Two hours later with no traffic the window is empty: the rate decays
	// to zero and the TTL projection (which would be +Inf) is omitted, while
	// the since-boot and per-family totals hold.
	fake = fake.Add(2 * time.Hour)
	st, err = svc.DatasetStats("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.EpsilonPerHour != 0 {
		t.Errorf("burn two idle hours later = %g ε/h, want 0", st.EpsilonPerHour)
	}
	if st.BudgetTTLSeconds != nil {
		t.Errorf("BudgetTTLSeconds = %g on an idle window, want omitted", *st.BudgetTTLSeconds)
	}
	if st.EpsilonCommitted != 0.5 {
		t.Errorf("EpsilonCommitted = %g, want 0.5 (since-boot total must not decay)", st.EpsilonCommitted)
	}
	if st.SpendByFamily[KindTriangles] != 0.5 {
		t.Errorf("SpendByFamily[triangles] = %g, want 0.5 (attribution must not decay)", st.SpendByFamily[KindTriangles])
	}
}
