package service

import (
	"context"
	"math"

	"recmech/internal/estimate"
	"recmech/internal/mechanism"
	"recmech/internal/plan"
	"recmech/internal/trace"
)

// DefaultTail is the tail parameter c substituted when an accuracy request
// omits one (alias of the plan package's constant, which owns the choice).
const DefaultTail = plan.DefaultTail

// AdviseRequest is the body of POST /v2/advise: a query workload (the same
// shape as a Request — nothing is released and zero ε is spent) plus the
// accuracy question being asked. Epsilon asks "what error at this ε"
// (the server default when omitted); TargetError, when positive, also asks
// the inverse "what ε for this error". Tail is the Theorem 1 tail
// parameter c (> 0), defaulting to DefaultTail.
type AdviseRequest struct {
	Request
	TargetError float64 `json:"targetError,omitempty"`
	Tail        float64 `json:"tail,omitempty"`
}

// AccuracyInfo is one evaluated Theorem 1 utility profile: with
// probability at least 1 − FailureProb, a release at Epsilon lands within
// Error of the true answer. Error = NoiseTerm + ClampTerm (the Laplace
// noise at the inflated scale Δ̂, and the clamping loss of X).
//
// The profile is computed from the sensitive data (via G_{|P|}) and is not
// itself differentially private: it reaches tenants only on servers that
// opted in via Config.ExposeAccuracy (see DESIGN.md).
type AccuracyInfo struct {
	Epsilon     float64 `json:"epsilon"`
	Tail        float64 `json:"tail"`
	Error       float64 `json:"error"`
	FailureProb float64 `json:"failureProb"`
	NoiseTerm   float64 `json:"noiseTerm"`
	ClampTerm   float64 `json:"clampTerm"`
	// SamplerTerm is the estimator's concentration-bound error contribution
	// for a sampled release (Error = NoiseTerm + SamplerTerm there, and
	// FailureProb folds in the contract's failure mass by union bound).
	// Zero — and omitted — for exact releases.
	SamplerTerm float64 `json:"samplerTerm,omitempty"`
}

func accuracyInfo(epsilon, tail float64, b mechanism.AccuracyBound) AccuracyInfo {
	return AccuracyInfo{
		Epsilon:     epsilon,
		Tail:        tail,
		Error:       b.Error,
		FailureProb: b.FailureProb,
		NoiseTerm:   b.NoiseTerm,
		ClampTerm:   b.ClampTerm,
		SamplerTerm: b.SamplerTerm,
	}
}

// EstimateInfo is a sampled plan's estimator contract as surfaced to
// tenants: the sampling method, the budget it ran at, and the concentration
// bound — deliberately never the estimate itself, which approximates the
// true answer and is not differentially private.
type EstimateInfo struct {
	Method     string  `json:"method"`
	Samples    int     `json:"samples"`
	Confidence float64 `json:"confidence"`
	AbsError   float64 `json:"absError"`
	RelError   float64 `json:"relError"`
}

func estimateInfo(res estimate.Result) EstimateInfo {
	return EstimateInfo{
		Method:     res.Method,
		Samples:    res.Samples,
		Confidence: res.Contract.Confidence,
		AbsError:   res.Contract.AbsError,
		RelError:   res.Contract.RelError,
	}
}

// EpsilonAdvice answers the inverse accuracy question: the smallest ε
// whose Theorem 1 bound meets TargetError, and the profile actually
// achieved there. The advice ignores per-query ε ceilings and the
// dataset's remaining budget — it reports what the accuracy demands, and
// the caller decides whether that spend is admissible.
type EpsilonAdvice struct {
	TargetError float64      `json:"targetError"`
	Epsilon     float64      `json:"epsilon"`
	Accuracy    AccuracyInfo `json:"accuracy"`
}

// AdviseInfo is the POST /v2/advise response. Zero ε was spent producing
// it; AtEpsilon is always present (the request's ε, or the server default),
// ForTargetError only when the request asked the inverse question.
type AdviseInfo struct {
	Dataset string `json:"dataset"`
	Kind    string `json:"kind"`
	Privacy string `json:"privacy"`
	// Mode is the resolved compile tier the advice describes: a sampled
	// plan's bounds compose the estimator contract with the DP noise (see
	// AccuracyInfo.SamplerTerm and DESIGN.md "Estimator error vs. DP noise").
	Mode string `json:"mode,omitempty"`
	// AlreadyPrepared is true when the workload's plan was cached before
	// this call (an advise may compile, exactly like a prepare).
	AlreadyPrepared bool           `json:"alreadyPrepared"`
	AtEpsilon       *AccuracyInfo  `json:"atEpsilon"`
	ForTargetError  *EpsilonAdvice `json:"forTargetError,omitempty"`
	// Estimate is the sampled plan's estimator contract (never the estimate
	// value itself); nil for exact plans.
	Estimate *EstimateInfo `json:"estimate,omitempty"`
	// TraceID names the span tree recorded when this advise compiled a
	// plan; fetch it at GET /v1/traces/{id}.
	TraceID string `json:"traceId,omitempty"`
}

// Advise answers accuracy questions about a workload at zero ε: the
// Theorem 1 error bound at the request's ε, and (when TargetError is set)
// the smallest ε meeting that target. The workload's plan is fetched or
// compiled exactly as a Prepare would — so an advise doubles as a warm-up
// — but no noise is drawn and no budget moves.
//
// Fails with ErrAccuracyDisabled (HTTP 403) unless Config.ExposeAccuracy
// is set: the bound derives from the sensitive data and per-query exposure
// is an explicit operator decision (see DESIGN.md).
func (s *Service) Advise(ctx context.Context, req AdviseRequest) (AdviseInfo, error) {
	if !s.cfg.ExposeAccuracy {
		return AdviseInfo{}, &AccuracyDisabledError{}
	}
	tail := req.Tail
	if tail == 0 {
		tail = DefaultTail
	}
	if math.IsNaN(tail) || math.IsInf(tail, 0) || tail <= 0 {
		return AdviseInfo{}, &TailError{Tail: tail}
	}
	if t := req.TargetError; math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		return AdviseInfo{}, badRequestf("targetError must be positive and finite, got %g", t)
	}
	if err := req.Request.normalize(s.cfg); err != nil {
		return AdviseInfo{}, err
	}
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		return AdviseInfo{}, err
	}
	// Resolve "auto" against the dataset before any key derivation: the
	// advice must describe the tier a Query would actually run.
	req.Request.resolveMode(ds, s.cfg)
	// Trace policy matches Prepare: record a span tree exactly when real
	// work (a compile, or joining one in flight) is about to happen.
	var root *trace.Span
	tctx := ctx
	if pk, kerr := req.Request.ensurePlanKey(ds); kerr == nil && !s.exec.PlanReady(pk) {
		root = s.tr.Start("advise")
		annotateRoot(root, ds, &req.Request)
		tctx = trace.NewContext(ctx, root)
	}
	var (
		pl  *plan.Plan
		hit bool
	)
	err = retryLeaderCancel(ctx, func() error {
		var err error
		pl, hit, err = s.exec.PlanFor(tctx, ds, &req.Request)
		return err
	})
	var tid string
	if root != nil {
		root.Bool("planHit", hit)
		if err != nil {
			root.Str("error", err.Error())
		}
		tid = s.tr.Finish(root)
		putTraceID(ctx, tid)
	}
	if err != nil {
		return AdviseInfo{}, err
	}
	info := AdviseInfo{
		Dataset:         ds.Name,
		Kind:            req.Kind,
		Privacy:         req.Privacy,
		Mode:            req.Mode,
		AlreadyPrepared: hit,
		TraceID:         tid,
	}
	if res, ok := pl.EstimateResult(); ok {
		est := estimateInfo(res)
		info.Estimate = &est
	}
	b, err := pl.ErrorProfile(req.Epsilon, tail)
	if err != nil {
		return AdviseInfo{}, asRequestError(err)
	}
	at := accuracyInfo(req.Epsilon, tail, b)
	info.AtEpsilon = &at
	if req.TargetError > 0 {
		eps, ab, err := pl.EpsilonFor(req.TargetError, tail)
		if err != nil {
			return AdviseInfo{}, asRequestError(err)
		}
		info.ForTargetError = &EpsilonAdvice{
			TargetError: req.TargetError,
			Epsilon:     eps,
			Accuracy:    accuracyInfo(eps, tail, ab),
		}
	}
	return info, nil
}
