package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"recmech/internal/graph"
	"recmech/internal/noise"
	"recmech/internal/plan"
	"recmech/internal/store"
)

// edgeText renders edges in ReadEdgeList format (no header: the node
// universe is the dataset's unless the append grows it explicitly).
func edgeText(edges ...[2]int) string {
	var b strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&b, "%d %d\n", e[0], e[1])
	}
	return b.String()
}

// freshEdges returns n single-edge append payloads over pairs g lacks.
func freshEdges(g *graph.Graph, n int) []string {
	var out []string
	for u := 0; u < g.NumNodes() && len(out) < n; u++ {
		for v := u + 1; v < g.NumNodes() && len(out) < n; v++ {
			if !g.HasEdge(u, v) {
				out = append(out, fmt.Sprintf("%d %d\n", u, v))
			}
		}
	}
	if len(out) < n {
		panic("fixture graph too dense for freshEdges")
	}
	return out
}

func graphText(g *graph.Graph) string {
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}

// TestAppendBitIdentity is the service-layer golden contract: a dataset
// built by upload+append answers every workload bit-identically to one
// uploaded whole at the final state, because the re-warm pass's
// plan.Advance is certified bit-identical to a cold compile and the noise
// streams depend only on (seed, worker, draw order).
func TestAppendBitIdentity(t *testing.T) {
	base := graph.RandomAverageDegree(noise.NewRand(11), 24, 4)
	delta := [][2]int{{0, 23}, {5, 17}, {9, 21}}
	full := base.Clone()
	for _, e := range delta {
		full.AddEdge(e[0], e[1])
	}
	requests := []Request{
		{Dataset: "g", Kind: KindTriangles, Epsilon: 0.4},
		{Dataset: "g", Kind: KindKStars, K: 2, Epsilon: 0.3},
		{Dataset: "g", Kind: KindTriangles, Privacy: "edge", Epsilon: 0.5},
	}
	ctx := context.Background()
	cfg := Config{DatasetBudget: 100, Workers: 1, Seed: 5}

	// Service A: upload the base, prepare plans (zero noise draws), append
	// the delta, let the re-warm advance the plans, then query.
	a := New(cfg)
	if err := a.AddGraph("g", base); err != nil {
		t.Fatal(err)
	}
	for _, req := range requests {
		if _, err := a.Prepare(ctx, req); err != nil {
			t.Fatalf("prepare: %v", err)
		}
	}
	before := plan.ReadDeltaCounters()
	if _, err := a.AppendDataset("g", AppendRequest{Edges: edgeText(delta...)}); err != nil {
		t.Fatalf("append: %v", err)
	}
	a.rewarmWG.Wait()
	after := plan.ReadDeltaCounters()
	if got := after.Advances - before.Advances; got != uint64(len(requests)) {
		t.Fatalf("re-warm advanced %d plans, want %d", got, len(requests))
	}
	var gotA []float64
	for _, req := range requests {
		resp, err := a.Query(ctx, req)
		if err != nil {
			t.Fatalf("query after append: %v", err)
		}
		gotA = append(gotA, resp.Value)
	}

	// Service B: the final graph uploaded whole, same seed, same workload
	// sequence — the cold-compile reference.
	b := New(cfg)
	if err := b.AddGraph("g", full); err != nil {
		t.Fatal(err)
	}
	for _, req := range requests {
		if _, err := b.Prepare(ctx, req); err != nil {
			t.Fatalf("prepare: %v", err)
		}
	}
	for i, req := range requests {
		resp, err := b.Query(ctx, req)
		if err != nil {
			t.Fatalf("reference query: %v", err)
		}
		if math.Float64bits(resp.Value) != math.Float64bits(gotA[i]) {
			t.Fatalf("request %d: delta-compiled release %v != cold release %v", i, gotA[i], resp.Value)
		}
	}
}

// TestAppendRewarmPublishesNewGeneration pins the lineage mechanics: after
// an append, the predecessor generation's cached plan has been advanced and
// published under the new generation's key, so the next query is a plan hit
// (no fresh compile), and the old generation's entries are gone.
func TestAppendRewarmPublishesNewGeneration(t *testing.T) {
	s := New(Config{DatasetBudget: 100, Workers: 1, Seed: 3})
	g := graph.RandomAverageDegree(noise.NewRand(7), 20, 4)
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.4}
	if _, err := s.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	if len(s.exec.plans.Keys()) != 1 || len(s.cache.Keys()) != 1 {
		t.Fatalf("precondition: plans=%v releases=%v", s.exec.plans.Keys(), s.cache.Keys())
	}
	oldPlanKey := s.exec.plans.Keys()[0]

	if _, err := s.AppendDataset("g", AppendRequest{Edges: "1 18\n"}); err != nil {
		t.Fatal(err)
	}
	s.rewarmWG.Wait()
	if s.exec.plans.Has(oldPlanKey) {
		t.Fatalf("old-generation plan key %q survived the append", oldPlanKey)
	}
	if len(s.cache.Keys()) != 0 {
		t.Fatalf("old-generation release entries survived: %v", s.cache.Keys())
	}
	keys := s.exec.plans.Keys()
	if len(keys) != 1 || !strings.HasPrefix(keys[0], "g#2|") {
		t.Fatalf("re-warmed plan keys %v, want exactly one under g#2|", keys)
	}
	resp, err := s.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("post-append query replayed a stale release")
	}
	if st := s.Stats(); st.DeltaCompiles == nil || st.DeltaCompiles.Appends == 0 {
		t.Fatalf("stats missing deltaCompiles section: %+v", st.DeltaCompiles)
	}
}

// TestReuploadAndDeletePurgeStaleEntries pins satellite 1: re-registering a
// dataset purges the cached releases and plans of its unreachable
// generations eagerly, and deleting it purges every generation — while a
// neighbor dataset whose name shares a prefix is untouched.
func TestReuploadAndDeletePurgeStaleEntries(t *testing.T) {
	s := New(Config{DatasetBudget: 100, Workers: 1, Seed: 3})
	g := graph.RandomAverageDegree(noise.NewRand(7), 16, 3)
	up := graphText(g)
	if _, err := s.UploadGraph("g", []byte(up)); err != nil {
		t.Fatal(err)
	}
	// "g2" shares the prefix "g": the purge predicate must not catch it.
	if _, err := s.UploadGraph("g2", []byte(up)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, ds := range []string{"g", "g2"} {
		if _, err := s.Query(ctx, Request{Dataset: ds, Kind: KindTriangles, Epsilon: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	countFor := func(keys []string, prefix string) int {
		n := 0
		for _, k := range keys {
			if strings.HasPrefix(k, prefix) {
				n++
			}
		}
		return n
	}
	if countFor(s.cache.Keys(), "g#") != 1 || countFor(s.cache.Keys(), "g2#") != 1 {
		t.Fatalf("precondition: release keys %v", s.cache.Keys())
	}

	// Re-upload g: its gen-1 entries must go, g2's must stay.
	if _, err := s.UploadGraph("g", []byte(up)); err != nil {
		t.Fatal(err)
	}
	if n := countFor(s.cache.Keys(), "g#1|"); n != 0 {
		t.Fatalf("re-upload left %d stale release entries: %v", n, s.cache.Keys())
	}
	if countFor(s.cache.Keys(), "g2#") != 1 || countFor(s.exec.plans.Keys(), "g2#") != 1 {
		t.Fatalf("purge leaked into prefix-sharing dataset g2: releases=%v plans=%v",
			s.cache.Keys(), s.exec.plans.Keys())
	}

	// Delete g: every remaining g entry must go.
	if _, err := s.Query(ctx, Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDataset("g"); err != nil {
		t.Fatal(err)
	}
	if n := countFor(s.cache.Keys(), "g#") + countFor(s.exec.plans.Keys(), "g#"); n != 0 {
		t.Fatalf("delete left %d cached entries: releases=%v plans=%v",
			n, s.cache.Keys(), s.exec.plans.Keys())
	}
	if countFor(s.cache.Keys(), "g2#") != 1 {
		t.Fatalf("delete of g purged g2's entries: %v", s.cache.Keys())
	}
}

// TestAppendCrossesEstimateThreshold pins satellite 2: an append that pushes
// a graph over -estimate-threshold flips mode "auto" from exact to sampled
// on the next compile, the resolved mode lands in the access log, and the
// sampled release is cached under a distinct key (the mode/samples segment),
// so it can never replay as the exact answer.
func TestAppendCrossesEstimateThreshold(t *testing.T) {
	g := graph.RandomAverageDegree(noise.NewRand(9), 16, 1)
	threshold := g.NumEdges() + 3 // three fresh edges away from flipping
	s := New(Config{DatasetBudget: 100, Workers: 1, Seed: 3, EstimateThreshold: threshold})
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var mu sync.Mutex
	logger, err := NewAccessLogger(syncWriter{&mu, &buf}, "json")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(WithAccessLog(NewHandler(s), logger))
	defer ts.Close()

	post := func(body string) Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v2/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %d %s", resp.StatusCode, raw)
		}
		var r Response
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	const q = `{"dataset":"g","kind":"triangles","epsilon":0.4,"mode":"auto"}`
	if r := post(q); r.Mode != "" {
		t.Fatalf("under threshold: mode %q, want exact (omitted)", r.Mode)
	}

	// Push the edge count to the threshold with fresh edges.
	var adds []string
	need := threshold - g.NumEdges()
	for u := 0; u < 16 && need > 0; u++ {
		for v := u + 1; v < 16 && need > 0; v++ {
			if !g.HasEdge(u, v) {
				adds = append(adds, fmt.Sprintf("%d %d", u, v))
				need--
			}
		}
	}
	areq, _ := json.Marshal(AppendRequest{Edges: strings.Join(adds, "\n")})
	hreq, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/g", bytes.NewReader(areq))
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d", hresp.StatusCode)
	}
	s.rewarmWG.Wait()

	if r := post(q); r.Mode != ModeSampled {
		t.Fatalf("over threshold: mode %q, want %q", r.Mode, ModeSampled)
	}
	sampledKeys := 0
	for _, k := range s.cache.Keys() {
		if strings.Contains(k, "mode=sampled") {
			sampledKeys++
		}
	}
	if sampledKeys != 1 {
		t.Fatalf("sampled release not keyed distinctly: %v", s.cache.Keys())
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	mu.Unlock()
	var modes []string
	for _, line := range lines {
		var e AccessEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		if e.Path == "/v2/query" {
			modes = append(modes, e.Mode)
		}
	}
	if len(modes) != 2 || modes[0] != ModeExact || modes[1] != ModeSampled {
		t.Fatalf("access-log modes %v, want [exact sampled]", modes)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestAppendDurableRecovery checks the WAL leg of the tentpole: journalled
// deltas replay at boot, the dataset comes back at its last micro-generation
// with the appended edges, and releases recorded against that generation
// replay at zero ε.
func TestAppendDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DatasetBudget: 100, Workers: 1, Seed: 5}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, warns := NewWithStore(cfg, st)
	if len(warns) != 0 {
		t.Fatalf("boot warnings: %v", warns)
	}
	g := graph.RandomAverageDegree(noise.NewRand(13), 20, 4)
	if _, err := s.UploadGraph("g", []byte(graphText(g))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendDataset("g", AppendRequest{Edges: "0 19\n2 17\n"}); err != nil {
		t.Fatal(err)
	}
	s.rewarmWG.Wait()
	ctx := context.Background()
	req := Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.4}
	resp, err := s.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Gen != 2 || !ds.Durable {
		t.Fatalf("after append: gen %d durable %v, want gen 2 durable", ds.Gen, ds.Durable)
	}
	wantEdges := ds.Graph.NumEdges()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, warns := NewWithStore(cfg, st2)
	if len(warns) != 0 {
		t.Fatalf("reboot warnings: %v", warns)
	}
	ds2, err := s2.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Gen != 2 || ds2.Graph.NumEdges() != wantEdges {
		t.Fatalf("recovered gen %d with %d edges, want gen 2 with %d", ds2.Gen, ds2.Graph.NumEdges(), wantEdges)
	}
	resp2, err := s2.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("release recorded against the appended generation did not replay")
	}
	if math.Float64bits(resp2.Value) != math.Float64bits(resp.Value) {
		t.Fatalf("replayed %v != recorded %v", resp2.Value, resp.Value)
	}
}

// TestAppendKeepWindowMaterializes checks the delta journal's compaction
// valve: once DeltaKeepWindow deltas accumulate, an append folds the chain
// into a full re-materialization at the current generation and drops the
// journalled deltas — and recovery from the materialized state is identical.
func TestAppendKeepWindowMaterializes(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DatasetBudget: 100, Workers: 1, Seed: 5, DeltaKeepWindow: 2}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewWithStore(cfg, st)
	g := graph.RandomAverageDegree(noise.NewRand(13), 12, 2)
	if _, err := s.UploadGraph("g", []byte(graphText(g))); err != nil {
		t.Fatal(err)
	}
	adds := freshEdges(g, 3)
	for _, a := range adds {
		if _, err := s.AppendDataset("g", AppendRequest{Edges: a}); err != nil {
			t.Fatal(err)
		}
	}
	s.rewarmWG.Wait()
	// Appends 1 and 2 journal; append 2 hits the window and materializes
	// (dropping both), append 3 starts a fresh chain of one.
	if ds := st.DeltasFor("g"); len(ds) != 1 {
		t.Fatalf("delta chain after keep-window fold: %d entries, want 1", len(ds))
	}
	df, err := st.Datasets().Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if df.Version != 3 {
		t.Fatalf("materialized version %d, want 3 (the fold generation)", df.Version)
	}
	wantEdges := g.NumEdges() + len(adds)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, warns := NewWithStore(cfg, st2)
	if len(warns) != 0 {
		t.Fatalf("reboot warnings: %v", warns)
	}
	ds2, err := s2.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Gen != 4 || ds2.Graph.NumEdges() != wantEdges {
		t.Fatalf("recovered gen %d with %d edges, want gen 4 with %d", ds2.Gen, ds2.Graph.NumEdges(), wantEdges)
	}
}

// TestDeleteRecreateNeverReissuesDeltaGenerations pins the aliasing fence:
// journalled appends advance generations past the materialized version, and
// a delete / re-upload cycle — in-process or across a restart — must start
// beyond every generation ever issued, or retained release keys could alias
// new data.
func TestDeleteRecreateNeverReissuesDeltaGenerations(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DatasetBudget: 100, Workers: 1, Seed: 5}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewWithStore(cfg, st)
	g := graph.RandomAverageDegree(noise.NewRand(13), 12, 2)
	if _, err := s.UploadGraph("g", []byte(graphText(g))); err != nil { // v1
		t.Fatal(err)
	}
	if _, err := s.AppendDataset("g", AppendRequest{Edges: "0 11\n"}); err != nil { // v2, delta only
		t.Fatal(err)
	}
	s.rewarmWG.Wait()
	if err := s.DeleteDataset("g"); err != nil {
		t.Fatal(err)
	}
	if len(st.DeltasFor("g")) != 0 {
		t.Fatal("delete left journalled deltas behind")
	}
	if _, err := s.UploadGraph("g", []byte(graphText(g))); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.reg.Get("g")
	if ds.Gen <= 2 {
		t.Fatalf("in-process re-create reissued generation %d (deltas reached 2)", ds.Gen)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Same fence across a restart: the tombstone's version floor carries it.
	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, _ := NewWithStore(cfg, st2)
	if err := s2.DeleteDataset("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.UploadGraph("g", []byte(graphText(g))); err != nil {
		t.Fatal(err)
	}
	ds2, _ := s2.reg.Get("g")
	if ds2.Gen <= ds.Gen {
		t.Fatalf("post-restart re-create reissued generation %d (prior life reached %d)", ds2.Gen, ds.Gen)
	}
}

// TestAppendRelational covers the row-append path: durable services
// re-materialize the combined tables (the appended rows change the next
// compile's answer space), and in-memory services reject with a typed 400.
func TestAppendRelational(t *testing.T) {
	tables := map[string][]byte{
		"edges": []byte("u v\na b @ a & b\nb c @ b & c\n"),
	}
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, _ := NewWithStore(Config{DatasetBudget: 100, Workers: 1, Seed: 5}, st)
	if _, err := s.UploadTables("r", tables); err != nil {
		t.Fatal(err)
	}
	info, err := s.AppendDataset("r", AppendRequest{Rows: map[string]string{"edges": "c d @ c & d"}})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := s.reg.Get("r")
	if ds.Gen != 2 {
		t.Fatalf("relational append landed at gen %d, want 2", ds.Gen)
	}
	if len(info.Tables) != 1 || info.Tables[0] != "edges" {
		t.Fatalf("append info %+v", info)
	}
	// The appended row is part of the catalogue now: a count over edges
	// sees three rows' participants, not two.
	texts, ver, err := st.Datasets().RawTables("r")
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 || !strings.Contains(string(texts["edges"]), "c d @ c & d") {
		t.Fatalf("materialized v%d text %q", ver, texts["edges"])
	}
	if _, err := s.AppendDataset("r", AppendRequest{Rows: map[string]string{"absent": "x y"}}); err == nil {
		t.Fatal("append to unknown table succeeded")
	}

	mem := New(Config{DatasetBudget: 100, Workers: 1, Seed: 5})
	u, db, _, err := store.ParseTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.AddRelational("r", u, db); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.AppendDataset("r", AppendRequest{Rows: map[string]string{"edges": "c d @ c & d"}}); err == nil {
		t.Fatal("in-memory relational append succeeded, want typed rejection")
	}
}

// TestDeltaCompileCountersExposed is the counter sanity check CI's bench
// step leans on: after an append with a warm plan, the /metrics scrape
// carries the recmech_dataset_appends_total and recmech_delta_compile_*
// families with internally consistent values. The delta counters are
// process-global, so assertions are lower bounds and invariants, not
// exact values.
func TestDeltaCompileCountersExposed(t *testing.T) {
	s := New(Config{DatasetBudget: 100, Workers: 1, Seed: 3})
	g := graph.RandomAverageDegree(noise.NewRand(7), 20, 4)
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Query(ctx, Request{Dataset: "g", Kind: KindTriangles, Epsilon: 0.4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendDataset("g", AppendRequest{Edges: freshEdges(g, 1)[0]}); err != nil {
		t.Fatal(err)
	}
	s.rewarmWG.Wait()

	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	scrape := string(raw)

	val := func(family string) float64 {
		t.Helper()
		for _, line := range strings.Split(scrape, "\n") {
			if rest, ok := strings.CutPrefix(line, family+" "); ok {
				var v float64
				if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
					t.Fatalf("unparsable %s value %q", family, rest)
				}
				return v
			}
		}
		t.Fatalf("family %s missing from scrape", family)
		return 0
	}
	if v := val("recmech_dataset_appends_total"); v < 1 {
		t.Errorf("appends_total = %v, want ≥ 1", v)
	}
	advances := val("recmech_delta_compile_advances_total")
	if advances < 1 {
		t.Errorf("advances_total = %v, want ≥ 1", advances)
	}
	units := val("recmech_delta_compile_units_total")
	dirty := val("recmech_delta_compile_units_dirty_total")
	if units < dirty {
		t.Errorf("units_total %v < units_dirty_total %v", units, dirty)
	}
	if v := val("recmech_delta_compile_identical_total"); v > advances {
		t.Errorf("identical_total %v > advances_total %v", v, advances)
	}
	for _, family := range []string{
		"recmech_delta_compile_fallbacks_total",
		"recmech_delta_compile_tuples_reused_total",
		"recmech_delta_compile_tuples_encoded_total",
		"recmech_delta_compile_seeds_inherited_total",
		"recmech_delta_compile_values_carried_total",
	} {
		if v := val(family); v < 0 {
			t.Errorf("%s = %v, want ≥ 0", family, v)
		}
	}
}

// TestAppendValidation sweeps the request-shape rejections.
func TestAppendValidation(t *testing.T) {
	s := New(Config{DatasetBudget: 100, Workers: 1, Seed: 5})
	g := graph.RandomAverageDegree(noise.NewRand(13), 8, 2)
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ds   string
		ap   AppendRequest
	}{
		{"both shapes", "g", AppendRequest{Edges: "0 1", Rows: map[string]string{"t": "x"}}},
		{"neither shape", "g", AppendRequest{}},
		{"rows against graph", "g", AppendRequest{Rows: map[string]string{"t": "x"}}},
		{"unknown dataset", "nope", AppendRequest{Edges: "0 1"}},
		{"bad edge text", "g", AppendRequest{Edges: "zero one"}},
	}
	for _, tc := range cases {
		if _, err := s.AppendDataset(tc.ds, tc.ap); err == nil {
			t.Errorf("%s: append succeeded, want error", tc.name)
		}
	}
	// A duplicate of an existing edge is rejected: the delta-compile
	// contract needs Added to be genuinely new edges.
	e := g.Edges()[0]
	if _, err := s.AppendDataset("g", AppendRequest{Edges: fmt.Sprintf("%d %d", e.U, e.V)}); err == nil {
		t.Error("duplicate-edge append succeeded, want error")
	}
}
