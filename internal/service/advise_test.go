package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"recmech"
)

// newAccuracyServer is newTestServer with the ExposeAccuracy opt-in: one
// graph dataset ("g") behind an in-process HTTP server.
func newAccuracyServer(t testing.TB, budget float64) (*httptest.Server, *recmech.Service) {
	t.Helper()
	svc := recmech.NewService(recmech.ServiceConfig{
		DatasetBudget:  budget,
		DefaultEpsilon: 0.5,
		Workers:        4,
		Seed:           7,
		ExposeAccuracy: true,
	})
	g := recmech.NewGraph(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {5, 6}, {6, 7}} {
		g.AddEdge(e[0], e[1])
	}
	if err := svc.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(recmech.NewServiceHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postAdvise(t *testing.T, ts *httptest.Server, body any) (int, recmech.AdviseInfo, map[string]any) {
	t.Helper()
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/advise", body)
	if code == http.StatusOK {
		var info recmech.AdviseInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatalf("unmarshal AdviseInfo %q: %v", raw, err)
		}
		return code, info, nil
	}
	var errBody map[string]any
	if err := json.Unmarshal(raw, &errBody); err != nil {
		t.Fatalf("unmarshal error body %q: %v", raw, err)
	}
	return code, recmech.AdviseInfo{}, errBody
}

// TestAdviseDisabledByDefault: the accuracy surfaces are data-dependent, so
// without the explicit opt-in /v2/advise answers 403 and a prepare carries
// no accuracy block.
func TestAdviseDisabledByDefault(t *testing.T) {
	ts, _ := newTestServer(t, 2.0) // ExposeAccuracy deliberately unset
	code, _, errBody := postAdvise(t, ts, map[string]any{"dataset": "g", "kind": "triangles", "epsilon": 0.5})
	if code != http.StatusForbidden {
		t.Fatalf("advise on a non-exposing server: status %d, want 403", code)
	}
	if got := errCode(t, errBody); got != "accuracy_disabled" {
		t.Errorf("error code %q, want accuracy_disabled", got)
	}

	pcode, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/prepare", map[string]any{"dataset": "g", "kind": "triangles"})
	if pcode != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", pcode, raw)
	}
	var prep map[string]any
	if err := json.Unmarshal(raw, &prep); err != nil {
		t.Fatal(err)
	}
	if _, leaked := prep["accuracy"]; leaked {
		t.Errorf("prepare leaked an accuracy block without the opt-in: %s", raw)
	}
}

// TestAdviseBothDirections drives /v2/advise end to end on an opted-in
// server: the forward question (error at ε), the inverse question (ε for a
// target error), and the zero-ε contract — the budget must not move.
func TestAdviseBothDirections(t *testing.T) {
	ts, _ := newAccuracyServer(t, 2.0)
	before := getRemaining(t, ts, "g")

	code, info, _ := postAdvise(t, ts, map[string]any{"dataset": "g", "kind": "triangles", "epsilon": 0.5})
	if code != http.StatusOK {
		t.Fatalf("advise(forward): status %d", code)
	}
	if info.AtEpsilon == nil {
		t.Fatal("advise answered without an atEpsilon profile")
	}
	if info.AtEpsilon.Epsilon != 0.5 || info.AtEpsilon.Error <= 0 {
		t.Errorf("atEpsilon = %+v, want ε=0.5 and a positive error bound", info.AtEpsilon)
	}
	if info.AtEpsilon.FailureProb <= 0 || info.AtEpsilon.FailureProb >= 1 {
		t.Errorf("failureProb = %g, want in (0, 1)", info.AtEpsilon.FailureProb)
	}
	if info.ForTargetError != nil {
		t.Errorf("inverse advice present without a targetError: %+v", info.ForTargetError)
	}

	// Inverse: ask for a looser error than ε=0.5 achieves; the advised ε
	// must meet it and must not exceed 0.5 (more budget than needed).
	target := info.AtEpsilon.Error * 1.5
	code, info2, _ := postAdvise(t, ts, map[string]any{
		"dataset": "g", "kind": "triangles", "epsilon": 0.5, "targetError": target,
	})
	if code != http.StatusOK {
		t.Fatalf("advise(inverse): status %d", code)
	}
	adv := info2.ForTargetError
	if adv == nil {
		t.Fatal("advise answered the inverse question without forTargetError")
	}
	if adv.Accuracy.Error > target {
		t.Errorf("advised ε=%g achieves error %g, above the target %g", adv.Epsilon, adv.Accuracy.Error, target)
	}
	if adv.Epsilon <= 0 || adv.Epsilon > 0.5 {
		t.Errorf("advised ε=%g for a looser-than-ε=0.5 target, want in (0, 0.5]", adv.Epsilon)
	}

	// A second identical advise hits the now-cached plan.
	if _, info3, _ := postAdvise(t, ts, map[string]any{"dataset": "g", "kind": "triangles", "epsilon": 0.5}); !info3.AlreadyPrepared {
		t.Error("second advise did not report alreadyPrepared")
	}

	if after := getRemaining(t, ts, "g"); after != before {
		t.Errorf("advise moved the budget: remaining %g → %g, want unchanged", before, after)
	}
}

// TestAdviseValidation pins the typed 400s: an out-of-range tail is
// "invalid_tail" (the mechanism layer would panic on it; the boundary must
// convert), a negative target is a plain bad request, and an unachievable
// target names the tightest attainable bound.
func TestAdviseValidation(t *testing.T) {
	ts, _ := newAccuracyServer(t, 2.0)
	code, _, errBody := postAdvise(t, ts, map[string]any{"dataset": "g", "kind": "triangles", "tail": -1})
	if code != http.StatusBadRequest {
		t.Fatalf("advise(tail=-1): status %d, want 400", code)
	}
	if got := errCode(t, errBody); got != "invalid_tail" {
		t.Errorf("tail=-1 error code %q, want invalid_tail", got)
	}

	code, _, errBody = postAdvise(t, ts, map[string]any{"dataset": "g", "kind": "triangles", "targetError": -5})
	if code != http.StatusBadRequest {
		t.Fatalf("advise(targetError=-5): status %d, want 400", code)
	}
	if got := errCode(t, errBody); got != "bad_request" {
		t.Errorf("targetError=-5 error code %q, want bad_request", got)
	}

	code, _, errBody = postAdvise(t, ts, map[string]any{"dataset": "g", "kind": "triangles", "targetError": 1e-12})
	if code != http.StatusBadRequest {
		t.Fatalf("advise(unachievable): status %d, want 400", code)
	}
	inner := errBody["error"].(map[string]any)
	if msg, _ := inner["message"].(string); msg == "" {
		t.Error("unachievable-target rejection carries no message")
	}
}

// TestPrepareAccuracyWhenExposed: on an opted-in server the prepare
// response carries the Theorem 1 profile at the request's ε, matching what
// /v2/advise reports for the same workload.
func TestPrepareAccuracyWhenExposed(t *testing.T) {
	ts, _ := newAccuracyServer(t, 2.0)
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/prepare", map[string]any{"dataset": "g", "kind": "triangles", "epsilon": 0.5})
	if code != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", code, raw)
	}
	var prep struct {
		Accuracy *recmech.AccuracyInfo `json:"accuracy"`
	}
	if err := json.Unmarshal(raw, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Accuracy == nil {
		t.Fatal("prepare on an exposing server carries no accuracy block")
	}
	_, info, _ := postAdvise(t, ts, map[string]any{"dataset": "g", "kind": "triangles", "epsilon": 0.5})
	if info.AtEpsilon == nil || *prep.Accuracy != *info.AtEpsilon {
		t.Errorf("prepare accuracy %+v differs from advise %+v for the same workload", prep.Accuracy, info.AtEpsilon)
	}
}
