package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"recmech/internal/boolexpr"
	"recmech/internal/estimate"
	"recmech/internal/graph"
	"recmech/internal/plan"
	"recmech/internal/query"
	"recmech/internal/store"
	"recmech/internal/trace"
)

// Config tunes a Service. The zero value is usable: every field has a
// sensible default filled in by New.
type Config struct {
	// DatasetBudget is the total ε granted to each dataset at registration
	// (individually adjustable later with GrantBudget). Default 10.
	DatasetBudget float64
	// DefaultEpsilon is charged when a request omits ε. Default 0.5.
	DefaultEpsilon float64
	// MaxEpsilon caps any single request's ε, so one query cannot drain a
	// dataset. 0 disables the cap (the dataset budget still applies).
	MaxEpsilon float64
	// Workers bounds concurrent mechanism runs. Default GOMAXPROCS.
	Workers int
	// CompileParallelism sizes the shared compute pool that fresh compiles
	// fan their deterministic analysis into — subgraph enumeration shards
	// and the ladder's H/G LP probe waves. One pool serves the whole
	// service, so N concurrent fresh queries share at most this many extra
	// workers (plus their own goroutines) rather than oversubscribing the
	// box N·cores ways. Values above GOMAXPROCS are capped to it (extra
	// workers could only time-slice), and 1 means fully sequential
	// compiles. Parallelism never changes an output bit (see
	// internal/plan). Default GOMAXPROCS.
	CompileParallelism int
	// DisableLPWarmStart turns off warm-start basis handoff between the LP
	// solves of each plan's H/G ladder (the -lp-warm-start flag, inverted so
	// the zero-value Config keeps the production default: warm start on).
	// Purely a performance switch — the solver certifies every warm result
	// against the canonical basis and re-solves cold on any doubt, so
	// releases are bit-identical either way. See DESIGN.md "Warm-started
	// simplex".
	DisableLPWarmStart bool
	// Seed makes the noise streams reproducible across runs. Default 1.
	Seed int64
	// CacheEntries bounds the release cache; the oldest recorded releases
	// are evicted beyond it (a repeat then spends fresh ε). Default 4096.
	CacheEntries int
	// PlanEntries bounds the compiled-plan cache; the oldest plans are
	// evicted beyond it (a repeat then recompiles). Plans hold LP state and
	// memoized sequence values, so the bound is deliberately tighter than
	// the release cache's. Default 512.
	PlanEntries int
	// MaxUploadBytes caps a PUT /v1/datasets/{name} body; a larger upload
	// is rejected with a typed 413 instead of being buffered. Default 64 MiB.
	MaxUploadBytes int64
	// MaxBatchItems caps the number of queries in one POST /v2/jobs batch.
	// Default 64.
	MaxBatchItems int
	// MaxJobs bounds the job table both ways: at most this many jobs may
	// be active (queued/running) at once — submissions beyond it get a
	// typed 429 — and at most this many finished jobs are retained for
	// GET /v2/jobs, oldest-finished evicted first. Default 1024.
	MaxJobs int
	// TraceSampleEvery traces 1 in N warm (plan-cached) queries in addition
	// to the always-traced fresh compiles and job items. 0 (the default)
	// disables warm sampling, keeping tracing entirely off the prepared hot
	// path; see DESIGN.md "Per-query tracing".
	TraceSampleEvery int
	// TraceRingEntries bounds the ring of recent completed traces behind
	// GET /v1/traces; the oldest are evicted beyond it. Default 256.
	TraceRingEntries int
	// TraceMaxSpans bounds the spans recorded per trace; work beyond it
	// still runs but is counted as dropped rather than recorded.
	// Default 256 (a deep compile records well under 100).
	TraceMaxSpans int
	// ExposeAccuracy enables the tenant-facing accuracy surfaces: the
	// accuracy block on /v2/prepare responses and the POST /v2/advise
	// endpoint. Off by default, deliberately: the Theorem 1 error bound is
	// computed from the sensitive data (via G_{|P|}), so handing it to the
	// party issuing queries discloses information outside the DP
	// guarantee. Operator surfaces (/v1/stats, /metrics, traces, the
	// slow-query log) carry accuracy telemetry regardless of this flag —
	// they sit inside the trust boundary, beside Δ and the WAL. See
	// DESIGN.md "Accuracy telemetry and the data-dependence caveat".
	ExposeAccuracy bool
	// SpendRateWindow is the sliding window over which per-dataset ε burn
	// rates — DatasetStats.EpsilonPerHour, the recmech_budget_burn
	// gauge, and the recmech_budget_ttl_seconds forecast — are computed.
	// Default 1h.
	SpendRateWindow time.Duration
	// EstimateThreshold is the graph size (in edges) at which mode "auto"
	// switches a graph workload from exact enumeration to the estimator tier
	// (internal/estimate). 0 takes the default 500 000; negative disables
	// auto-sampling entirely (explicit mode "sampled" still works). Exact
	// enumeration on a graph past this size can take hours or exhaust
	// memory; the estimator answers in milliseconds with a stated error
	// contract. See OPERATIONS.md "Estimator tier".
	EstimateThreshold int
	// EstimateSamples is the estimator's sample budget when a sampled
	// request does not carry its own. Default 20 000 (estimate.DefaultSamples).
	EstimateSamples int
	// DeltaKeepWindow is how many journalled dataset deltas may accumulate
	// in the WAL before an append folds them into a full re-materialization
	// of the dataset (see AppendDataset). Recovery replays the chain either
	// way; the window only trades boot-time replay work against write
	// amplification on the append path. Default 64.
	DeltaKeepWindow int
}

func (c Config) withDefaults() Config {
	if c.DatasetBudget <= 0 {
		c.DatasetBudget = 10
	}
	if c.DefaultEpsilon <= 0 {
		c.DefaultEpsilon = 0.5
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CompileParallelism < 1 {
		c.CompileParallelism = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 4096
	}
	if c.PlanEntries < 1 {
		c.PlanEntries = 512
	}
	if c.MaxUploadBytes < 1 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.MaxBatchItems < 1 {
		c.MaxBatchItems = 64
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 1024
	}
	if c.TraceRingEntries < 1 {
		c.TraceRingEntries = 256
	}
	if c.TraceMaxSpans < 1 {
		c.TraceMaxSpans = 256
	}
	if c.SpendRateWindow <= 0 {
		c.SpendRateWindow = time.Hour
	}
	if c.EstimateThreshold == 0 {
		c.EstimateThreshold = 500_000
	}
	if c.EstimateSamples < 1 {
		c.EstimateSamples = estimate.DefaultSamples
	}
	if c.DeltaKeepWindow < 1 {
		c.DeltaKeepWindow = 64
	}
	return c
}

// Service is the concurrent DP query service: registry + accountant +
// executor + release cache behind one Query method. Construct with New,
// register datasets, then serve Query calls from any number of goroutines
// (NewHandler adapts it to HTTP for cmd/recmechd).
type Service struct {
	cfg   Config
	reg   *Registry
	acct  *Accountant
	cache *ReleaseCache
	exec  *Executor
	jobs  *jobTable
	met   *serviceMetrics
	tr    *trace.Tracer
	store *store.Store // nil for a purely in-memory service

	// adminMu serializes dataset mutations (upload/append/delete) so the
	// durable store and the in-memory registry can never diverge: without it
	// a DELETE racing a PUT could tombstone the manifest while the PUT's
	// registration resurrects the dataset in memory only.
	adminMu sync.Mutex

	// rewarmWG tracks the background plan re-warm goroutines an append
	// spawns (see rewarmPlans), so tests — and a graceful shutdown — can
	// wait for lineage maintenance to settle.
	rewarmWG sync.WaitGroup
}

// New returns an empty in-memory service: budget and releases die with the
// process. Production deployments should use NewWithStore.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		reg:   NewRegistry(),
		acct:  NewAccountant(),
		cache: NewReleaseCache(cfg.CacheEntries),
		exec:  NewExecutor(cfg.Workers, cfg.PlanEntries, cfg.CompileParallelism, cfg.Seed),
		jobs:  newJobTable(cfg.MaxJobs),
		met:   newServiceMetrics(cfg.SpendRateWindow),
		tr: trace.New(trace.Options{
			SampleEvery: cfg.TraceSampleEvery,
			MaxSpans:    cfg.TraceMaxSpans,
			Ring:        cfg.TraceRingEntries,
		}),
	}
	s.exec.lpWarmOff = cfg.DisableLPWarmStart
	s.exec.met = s.met
	s.met.bind(s)
	return s
}

// NewWithStore returns a service backed by a durable store: the accountant
// journals every budget transition to the store's WAL before applying it,
// recovered ledgers are restored (reservations in flight at a crash count
// as spent — recovery can only shrink remaining budget, never grow it),
// datasets persisted under the store load into the registry at their
// durable versions, and previously recorded releases replay from the cache
// at zero additional ε. Datasets that fail to load are skipped and
// returned as warnings; the service always comes up.
func NewWithStore(cfg Config, st *store.Store) (*Service, []error) {
	s := New(cfg)
	s.store = st
	s.met.bindStore(st)
	st.SetMaxReleases(s.cfg.CacheEntries) // retain at least what the cache can replay
	s.acct.SetJournal(st)
	for name, l := range st.Ledgers() {
		s.acct.Restore(name, l.Total, l.Spent)
	}
	files, warns := st.Datasets().LoadAll()
	for _, df := range files {
		if _, err := s.registerFile(df); err != nil {
			warns = append(warns, fmt.Errorf("service: dataset %q: funding ledger: %w", df.Name, err))
		}
		// Replay journalled appends beyond the materialized version, so the
		// dataset comes back at the micro-generation the WAL last recorded —
		// the generation the retained release keys (below) are fenced to.
		if df.Kind == store.KindGraph {
			warns = append(warns, s.replayDeltas(df)...)
		}
	}
	for _, rel := range st.Releases() {
		var resp Response
		if err := json.Unmarshal(rel.Payload, &resp); err != nil {
			warns = append(warns, fmt.Errorf("service: skipping undecodable recorded release %q: %w", rel.Key, err))
			continue
		}
		s.cache.Preload(rel.Key, resp)
		// Replay ε-spend attribution from the same journal: each retained
		// release record is one real past spend of resp.Epsilon on
		// resp.Dataset's resp.Kind family, so the per-family attribution
		// in GET /v1/datasets/{name}/stats is a pure function of the WAL —
		// identical before and after any crash/restart. (Records pruned
		// past the retention bound are not re-attributed; the ledger's
		// Spent remains the authoritative total.)
		s.met.attributeSpend(resp.Dataset, resp.Kind, resp.Epsilon)
	}
	return s, warns
}

// registerFile installs a store-loaded dataset at its durable version and
// funds it. The dataset is registered even when funding fails (the caller
// decides whether that is a boot warning or a request error).
func (s *Service) registerFile(df *store.DatasetFile) (*Dataset, error) {
	var d *Dataset
	if df.Kind == store.KindGraph {
		d = s.reg.PutGraphVersion(df.Name, df.Graph, df.Version)
	} else {
		d = s.reg.PutRelationalVersion(df.Name, df.Universe, df.DB, df.Version)
	}
	return d, s.fund(d)
}

// fund grants the default budget to a dataset with no ledger yet. An
// existing ledger — recovered from the journal, or operator-adjusted — is
// left untouched, so re-registration and delete/re-create cycles can
// never reset spent ε. (The per-dataset metrics block, which unlike the
// ledger is dropped on delete, is minted here too: fund sits on every
// upload/restore registration path.)
func (s *Service) fund(d *Dataset) error {
	s.met.ensureDS(d.Name)
	if _, ok := s.acct.Status(d.Name); ok {
		return nil
	}
	return s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// AddGraph registers a graph dataset and grants it the default budget
// (in-memory only — not persisted to the store; use UploadGraph for that).
func (s *Service) AddGraph(name string, g *graph.Graph) error {
	d := s.reg.PutGraph(name, g)
	s.met.ensureDS(d.Name)
	s.purgeStale(d.Name, currentKeyPrefix(d))
	return s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// AddRelational registers a relational dataset (a table catalogue plus the
// universe its annotations resolve in) and grants it the default budget
// (in-memory only — not persisted; use UploadTables for that).
func (s *Service) AddRelational(name string, u *boolexpr.Universe, db *query.Database) error {
	d := s.reg.PutRelational(name, u, db)
	s.met.ensureDS(d.Name)
	s.purgeStale(d.Name, currentKeyPrefix(d))
	return s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// GrantBudget overrides a dataset's total ε budget.
func (s *Service) GrantBudget(name string, epsilon float64) error {
	return s.acct.Grant(canonName(name), epsilon)
}

// UploadGraph validates, persists (when the service is store-backed), and
// registers an edge-list graph dataset under name. Re-uploading bumps the
// dataset's version, fencing stale cached releases; an existing ε ledger is
// preserved, so delete/re-upload cycles cannot reset spent budget.
func (s *Service) UploadGraph(name string, edgeList []byte) (DatasetInfo, error) {
	return s.upload(name, "graph",
		func(canon string) (*store.DatasetFile, error) {
			// Floor past the registry's highest generation: journalled
			// appends advance generations beyond the manifest's version, and
			// a re-upload landing on one of them would alias retained
			// release keys onto new data.
			return s.store.Datasets().PutGraphFloor(canon, edgeList, s.reg.LastGen(canon)+1)
		},
		func(canon string) (*Dataset, error) {
			g, err := graph.ReadEdgeList(bytes.NewReader(edgeList))
			if err != nil {
				return nil, err
			}
			return s.reg.PutGraph(canon, g), nil
		})
}

// UploadTables validates, persists (when store-backed), and registers a
// relational dataset: named annotated tables sharing one participant
// universe. Versioning and ledger semantics match UploadGraph.
func (s *Service) UploadTables(name string, tables map[string][]byte) (DatasetInfo, error) {
	return s.upload(name, "relational",
		func(canon string) (*store.DatasetFile, error) {
			// Same generation floor as UploadGraph (see there).
			return s.store.Datasets().PutTablesFloor(canon, tables, s.reg.LastGen(canon)+1)
		},
		func(canon string) (*Dataset, error) {
			u, db, _, err := store.ParseTables(tables)
			if err != nil {
				return nil, err
			}
			return s.reg.PutRelational(canon, u, db), nil
		})
}

// upload is the shared admin-upload flow: validate the name, persist via
// the store (which parses once; ErrBadData separates the caller's bad
// payload, a 400, from store I/O faults, a 500) or parse in memory, then
// fund the ledger if the dataset has none.
func (s *Service) upload(name, kind string,
	persist func(canon string) (*store.DatasetFile, error),
	parseMem func(canon string) (*Dataset, error),
) (DatasetInfo, error) {
	canon := canonName(name)
	if err := store.ValidateName(canon); err != nil {
		return DatasetInfo{}, badRequestf("%v", err)
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	var d *Dataset
	if s.store != nil {
		df, err := persist(canon)
		if err != nil {
			if errors.Is(err, store.ErrBadData) {
				return DatasetInfo{}, badRequestf("%s dataset %q: %v", kind, canon, err)
			}
			return DatasetInfo{}, err
		}
		if d, err = s.registerFile(df); err != nil {
			return DatasetInfo{}, err
		}
	} else {
		var err error
		if d, err = parseMem(canon); err != nil {
			return DatasetInfo{}, badRequestf("%s dataset %q: %v", kind, canon, err)
		}
		if err := s.fund(d); err != nil {
			return DatasetInfo{}, err
		}
	}
	// A re-upload supersedes every earlier generation: purge their cached
	// releases and plans eagerly (the bumped generation already fences them).
	s.purgeStale(d.Name, currentKeyPrefix(d))
	return s.describe(d), nil
}

// DeleteDataset unregisters a dataset and removes its persisted data. The
// ε ledger deliberately survives: budget already spent on releases about
// this data is spent forever, even across delete/re-create.
func (s *Service) DeleteDataset(name string) error {
	name = canonName(name)
	if err := store.ValidateName(name); err != nil {
		return badRequestf("%v", err)
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	// Tombstone the durable copy first: if that fails, the dataset stays
	// registered and queryable, rather than vanishing from memory only to
	// resurrect from disk at the next restart.
	storeHad := false
	if s.store != nil {
		// The tombstone adopts the registry's highest generation as its
		// version floor: journalled appends advance the registry past the
		// last materialized version, and without the floor a re-created
		// dataset could re-issue one of those generations for new data —
		// aliasing a retained release key, which is a privacy bug.
		err := s.store.Datasets().DeleteFloor(name, s.reg.LastGen(name))
		if err != nil && !errors.Is(err, store.ErrNoDataset) {
			return err
		}
		storeHad = err == nil
		if len(s.store.DeltasFor(name)) > 0 {
			_ = s.store.DropDeltas(name, ^uint64(0)) // best-effort: orphans are inert
		}
	}
	if !s.reg.Delete(name) && !storeHad {
		return &DatasetError{Name: name}
	}
	// Cached releases and plans of every generation are unreachable now —
	// their keys carry a generation a re-created dataset can never reuse —
	// so reclaim them eagerly instead of waiting for FIFO eviction.
	s.purgeStale(name, "")
	// The in-memory per-dataset metrics go with the dataset (the durable ε
	// ledger deliberately does not): a re-created dataset is new data and
	// must not inherit the old one's query counts or ε-rate history.
	s.met.dropDataset(name)
	return nil
}

// Datasets lists the registered datasets, each carrying its ε ledger
// snapshot so operators see data and budget state in one call.
func (s *Service) Datasets() []DatasetInfo {
	infos := s.reg.List()
	for i := range infos {
		if st, ok := s.acct.Status(infos[i].Name); ok {
			infos[i].Budget = &st
		}
	}
	return infos
}

// describe builds the DatasetInfo (with budget) for one dataset snapshot.
func (s *Service) describe(d *Dataset) DatasetInfo {
	info := d.info()
	if st, ok := s.acct.Status(d.Name); ok {
		info.Budget = &st
	}
	return info
}

// Budget snapshots a dataset's ε ledger.
func (s *Service) Budget(name string) (BudgetStatus, error) {
	st, ok := s.acct.Status(canonName(name))
	if !ok {
		return BudgetStatus{}, &DatasetError{Name: name}
	}
	return st, nil
}

// Query answers one differentially private query. The life of a request:
//
//  1. normalize (compiling the workload spec) and resolve the dataset
//     snapshot;
//  2. consult the release cache — a recorded identical release is replayed
//     at zero additional ε, and concurrent identical queries coalesce into
//     one flight;
//  3. otherwise reserve ε from the dataset's ledger (typed rejection when
//     exhausted, spending nothing), fetch or compile the query's plan, draw
//     the release on the worker pool, then commit the reservation — or
//     refund it if execution failed or the caller's context was canceled
//     first.
//
// Any error leaves the ledger exactly as it was: in particular a request
// canceled mid-flight refunds its reservation and records nothing, so a
// hung-up client never spends ε on an answer nobody received. Coalesced
// waiters of a canceled flight receive the cancellation error; the failed
// entry is dropped, so a retry recomputes (the compiled plan survives in
// the plan cache, making the retry cheap).
func (s *Service) Query(ctx context.Context, req Request) (Response, error) {
	if err := req.normalize(s.cfg); err != nil {
		return Response{}, err
	}
	return s.do(ctx, &req, nil, false)
}

// Prepare compiles (or finds compiled) the plan for a query without drawing
// a release, and warms the sequence ladder for the request's ε (the server
// default when omitted): zero ε is spent, and the next Query for the same
// workload at that ε typically pays only the noise draws. It reports
// whether the plan was already materialized.
func (s *Service) Prepare(ctx context.Context, req Request) (PrepareInfo, error) {
	if err := req.normalize(s.cfg); err != nil {
		return PrepareInfo{}, err
	}
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		return PrepareInfo{}, err
	}
	// Resolve "auto" against the dataset before anything derives a cache key.
	req.resolveMode(ds, s.cfg)
	// Trace a prepare exactly when it is about to do real work: the plan
	// cache holds no completed plan for the key, so a compile (or a join
	// onto an in-flight one) follows.
	var root *trace.Span
	tctx := ctx
	if pk, kerr := req.ensurePlanKey(ds); kerr == nil && !s.exec.PlanReady(pk) {
		root = s.tr.Start("prepare")
		annotateRoot(root, ds, &req)
		tctx = trace.NewContext(ctx, root)
	}
	var (
		pl  *plan.Plan
		hit bool
	)
	err = retryLeaderCancel(ctx, func() error {
		var err error
		pl, hit, err = s.exec.Prepare(tctx, ds, &req)
		return err
	})
	var tid string
	if root != nil {
		root.Bool("planHit", hit)
		if err != nil {
			root.Str("error", err.Error())
		}
		tid = s.tr.Finish(root)
		putTraceID(ctx, tid)
	}
	if err != nil {
		return PrepareInfo{}, err
	}
	info := PrepareInfo{Dataset: ds.Name, Kind: req.Kind, Privacy: req.Privacy, Mode: req.Mode, AlreadyPrepared: hit, TraceID: tid}
	if pl != nil {
		prof := pl.Profile()
		if prof.Kind != "" {
			info.Compile = &prof
		}
		// The accuracy and estimator-contract blocks are tenant-facing and
		// data-dependent, so they ride only on servers that opted in (see
		// Config.ExposeAccuracy). A profile failure degrades to omission:
		// the prepare itself succeeded.
		if s.cfg.ExposeAccuracy {
			if b, err := pl.ErrorProfile(req.Epsilon, DefaultTail); err == nil {
				acc := accuracyInfo(req.Epsilon, DefaultTail, b)
				info.Accuracy = &acc
			}
			if res, ok := pl.EstimateResult(); ok {
				est := estimateInfo(res)
				info.Estimate = &est
			}
		}
	}
	return info, nil
}

// retryLeaderCancel runs op until it stops failing with another flight
// leader's cancellation: a cancellation error while this caller's own ctx
// is live means op merely joined — or raced the fallout of — a flight
// whose leader hung up (singleflight plan compiles and release flights
// both run under their leader's ctx, and the failed entry is dropped), so
// the retry leads a fresh attempt on a live ctx. The caller's own
// cancellation, and every other error, passes through.
func retryLeaderCancel(ctx context.Context, op func() error) error {
	for {
		err := op()
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return err
	}
}

// PrepareInfo reports the outcome of a Prepare call. No ε is spent and
// nothing derived from the data is disclosed.
type PrepareInfo struct {
	Dataset string `json:"dataset"`
	Kind    string `json:"kind"`
	Privacy string `json:"privacy"`
	// Mode is the resolved compile tier ("exact" or "sampled") — the wire
	// request's "auto" resolved against the dataset's size. Caller-visible
	// unconditionally: it discloses only the dataset's coarse size class,
	// which the registry listing already reports.
	Mode string `json:"mode,omitempty"`
	// AlreadyPrepared is true when the plan was cached before this call.
	AlreadyPrepared bool `json:"alreadyPrepared"`
	// TraceID names the span tree recorded for this prepare (empty when it
	// hit an already-materialized plan, which records no trace); fetch it
	// at GET /v1/traces/{id}.
	TraceID string `json:"traceId,omitempty"`
	// Compile is the plan's retained compile profile: deterministic
	// wall-time shape of the expensive pipeline (also in GET /v1/stats as
	// an aggregate). Nil when the compile failed before producing a plan.
	Compile *plan.CompileProfile `json:"compile,omitempty"`
	// Accuracy is the Theorem 1 utility profile at the prepared ε (tail
	// DefaultTail). Present only on servers started with -expose-accuracy:
	// the bound is data-dependent, so per-query exposure is an explicit
	// operator opt-in (see DESIGN.md).
	Accuracy *AccuracyInfo `json:"accuracy,omitempty"`
	// Estimate is the sampled plan's estimator contract (method, sample
	// count, concentration bound) — never the estimate itself, which
	// approximates the true answer and is not differentially private.
	// Present only for sampled plans on servers started with
	// -expose-accuracy, for the same data-dependence reason as Accuracy.
	Estimate *EstimateInfo `json:"estimate,omitempty"`
}

// do is the serving core shared by Query and the async job runner: resolve
// the snapshot, consult the release cache, and on a miss spend ε through
// the two-phase ledger protocol around a plan-based execution.
//
// pre, when non-nil, is a reservation the caller already holds for exactly
// req.Epsilon on req.Dataset (batch jobs reserve all items atomically up
// front). do guarantees pre is settled on every path: committed by a fresh
// release, refunded on failure, and refunded when the response was shared —
// a cache replay or a coalesced flight — and therefore cost no ε.
//
// forceTrace records a span tree unconditionally (the job runner sets it, so
// every batch item is attributable after the fact, replays included); a
// synchronous query is traced per the policy in tracing.go — when real work
// follows a fresh plan key, or when the warm sampler fires.
func (s *Service) do(ctx context.Context, req *Request, pre *Reservation, forceTrace bool) (Response, error) {
	start := time.Now()
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		s.met.recordQuery(req.Dataset, req.Kind, false, false, false, req.Epsilon, start, err)
		return Response{}, settleErr(pre, err)
	}
	// Resolve "auto" into exact or sampled before any key derivation: the
	// resolved mode is part of the workload identity (a sampled estimate and
	// an exact answer must never share a recorded release).
	req.resolveMode(ds, s.cfg)
	annotateMode(ctx, req.Mode)
	key, err := req.cacheKey(ds)
	if err != nil {
		s.met.recordQuery(ds.Name, req.Kind, true, false, false, req.Epsilon, start, err)
		return Response{}, settleErr(pre, err)
	}
	// A forced trace starts before the release cache so replays are
	// recorded too; the policy-driven trace starts inside compute, where a
	// replay has already been ruled out.
	var root *trace.Span
	tctx := ctx
	if forceTrace {
		root = s.tr.Start("query")
		annotateRoot(root, ds, req)
		tctx = trace.NewContext(ctx, root)
	}
	preUsed := false
	planHit := false
	compute := func() (Response, error) {
		// The compute closure runs synchronously in this goroutine (at most
		// one caller per key computes, and the retry loop below re-runs it
		// sequentially), so preUsed, planHit, root and tctx need no
		// synchronization.
		//
		// A failed attempt settles only a reservation it made itself. pre
		// stays open across retries — plan compiles are cancelable, so an
		// attempt can die of a coalesced compile leader's cancellation
		// while this caller is live, and refunding the batch's atomically
		// pre-reserved ε there would let a concurrent query steal it
		// before the retry. pre is settled exactly once: committed by the
		// attempt that produces a release (preUsed), or refunded after the
		// loop by the shared epilogue below.
		if root == nil {
			// Reaching compute means no recorded release exists: real work
			// follows. Trace it when the plan cache predicts a fresh
			// compile — including joining someone else's in-flight compile,
			// which waits just as long — or when the warm sampler fires. At
			// default settings (sampling off) the plan-cached hot path pays
			// only this peek. A retried attempt keeps the first attempt's
			// root, so retry spans land in the same trace.
			if pk, kerr := req.ensurePlanKey(ds); kerr == nil && (!s.exec.PlanReady(pk) || s.tr.Sampled()) {
				root = s.tr.Start("query")
				annotateRoot(root, ds, req)
				tctx = trace.NewContext(ctx, root)
			}
		}
		resv := pre
		if resv == nil {
			rsp := trace.StartChild(root, "budget.reserve")
			var err error
			if resv, err = s.acct.Reserve(ds.Name, req.Epsilon); err != nil {
				rsp.Str("error", err.Error()).End()
				return Response{}, err
			}
			rsp.End()
		}
		value, hit, err := s.exec.Execute(tctx, ds, req)
		planHit = hit
		root.Bool("planHit", hit)
		if err != nil {
			if resv != pre {
				resv.Refund()
			}
			return Response{}, err
		}
		csp := trace.StartChild(root, "budget.commit")
		resv.Commit()
		csp.End()
		if resv == pre {
			preUsed = true
		}
		resp := Response{Dataset: ds.Name, Kind: req.Kind, Value: value, Epsilon: req.Epsilon}
		if req.Mode == ModeSampled {
			// Stamped only for sampled releases (omitempty), so exact
			// payloads — including every pre-estimator recorded release in a
			// durable WAL — stay byte-identical.
			resp.Mode = ModeSampled
		}
		if s.store != nil && ds.Durable {
			// Journal the release so it replays after a restart at zero ε.
			// Only for durable datasets: their generation is a store
			// version, stable across restarts, so the key can never alias
			// different data. A failed append is safe to ignore: the
			// release just won't replay, and a post-restart repeat spends
			// fresh ε instead.
			if payload, err := json.Marshal(resp); err == nil {
				wsp := trace.StartChild(root, "wal.append").Int("bytes", int64(len(payload)))
				_ = s.store.Release(key, payload)
				wsp.End()
			}
		}
		return resp, nil
	}
	var (
		resp   Response
		cached bool
	)
	// Leader-cancellation retries (see retryLeaderCancel): a retried
	// compute reuses pre safely — it is settled exactly once, by the
	// committing attempt or the epilogue below.
	err = retryLeaderCancel(ctx, func() error {
		var err error
		resp, cached, err = s.cache.Do(ctx, key, compute)
		return err
	})
	if pre != nil && !preUsed {
		// No attempt committed pre: the response was shared (replay or
		// coalesced flight), the wait was canceled, or every attempt
		// failed. Either way no ε was consumed against it — settle it here,
		// exactly once.
		pre.Refund()
	}
	if root != nil {
		root.Str("outcome", budgetOutcome(cached, err))
		if err != nil {
			root.Str("error", err.Error())
		}
		putTraceID(ctx, s.tr.Finish(root))
	}
	s.met.recordQuery(ds.Name, req.Kind, true, cached, planHit, req.Epsilon, start, err)
	if err != nil {
		return Response{}, err
	}
	resp.Cached = cached
	if st, ok := s.acct.Status(ds.Name); ok {
		resp.RemainingBudget = st.Remaining
	}
	return resp, nil
}

// settleErr refunds a pre-held reservation (if any) before returning err:
// used on the paths that fail before the release cache takes over.
func settleErr(pre *Reservation, err error) error {
	if pre != nil {
		pre.Refund()
	}
	return err
}
