package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"recmech/internal/boolexpr"
	"recmech/internal/graph"
	"recmech/internal/query"
	"recmech/internal/store"
)

// Config tunes a Service. The zero value is usable: every field has a
// sensible default filled in by New.
type Config struct {
	// DatasetBudget is the total ε granted to each dataset at registration
	// (individually adjustable later with GrantBudget). Default 10.
	DatasetBudget float64
	// DefaultEpsilon is charged when a request omits ε. Default 0.5.
	DefaultEpsilon float64
	// MaxEpsilon caps any single request's ε, so one query cannot drain a
	// dataset. 0 disables the cap (the dataset budget still applies).
	MaxEpsilon float64
	// Workers bounds concurrent mechanism runs. Default GOMAXPROCS.
	Workers int
	// Seed makes the noise streams reproducible across runs. Default 1.
	Seed int64
	// CacheEntries bounds the release cache; the oldest recorded releases
	// are evicted beyond it (a repeat then spends fresh ε). Default 4096.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.DatasetBudget <= 0 {
		c.DatasetBudget = 10
	}
	if c.DefaultEpsilon <= 0 {
		c.DefaultEpsilon = 0.5
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 4096
	}
	return c
}

// Service is the concurrent DP query service: registry + accountant +
// executor + release cache behind one Query method. Construct with New,
// register datasets, then serve Query calls from any number of goroutines
// (NewHandler adapts it to HTTP for cmd/recmechd).
type Service struct {
	cfg   Config
	reg   *Registry
	acct  *Accountant
	cache *ReleaseCache
	exec  *Executor
	store *store.Store // nil for a purely in-memory service

	// adminMu serializes dataset mutations (upload/delete) so the durable
	// store and the in-memory registry can never diverge: without it a
	// DELETE racing a PUT could tombstone the manifest while the PUT's
	// registration resurrects the dataset in memory only.
	adminMu sync.Mutex
}

// New returns an empty in-memory service: budget and releases die with the
// process. Production deployments should use NewWithStore.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		reg:   NewRegistry(),
		acct:  NewAccountant(),
		cache: NewReleaseCache(cfg.CacheEntries),
		exec:  NewExecutor(cfg.Workers, cfg.Seed),
	}
}

// NewWithStore returns a service backed by a durable store: the accountant
// journals every budget transition to the store's WAL before applying it,
// recovered ledgers are restored (reservations in flight at a crash count
// as spent — recovery can only shrink remaining budget, never grow it),
// datasets persisted under the store load into the registry at their
// durable versions, and previously recorded releases replay from the cache
// at zero additional ε. Datasets that fail to load are skipped and
// returned as warnings; the service always comes up.
func NewWithStore(cfg Config, st *store.Store) (*Service, []error) {
	s := New(cfg)
	s.store = st
	st.SetMaxReleases(s.cfg.CacheEntries) // retain at least what the cache can replay
	s.acct.SetJournal(st)
	for name, l := range st.Ledgers() {
		s.acct.Restore(name, l.Total, l.Spent)
	}
	files, warns := st.Datasets().LoadAll()
	for _, df := range files {
		if _, err := s.registerFile(df); err != nil {
			warns = append(warns, fmt.Errorf("service: dataset %q: funding ledger: %w", df.Name, err))
		}
	}
	for _, rel := range st.Releases() {
		var resp Response
		if err := json.Unmarshal(rel.Payload, &resp); err != nil {
			warns = append(warns, fmt.Errorf("service: skipping undecodable recorded release %q: %w", rel.Key, err))
			continue
		}
		s.cache.Preload(rel.Key, resp)
	}
	return s, warns
}

// registerFile installs a store-loaded dataset at its durable version and
// funds it. The dataset is registered even when funding fails (the caller
// decides whether that is a boot warning or a request error).
func (s *Service) registerFile(df *store.DatasetFile) (*Dataset, error) {
	var d *Dataset
	if df.Kind == store.KindGraph {
		d = s.reg.PutGraphVersion(df.Name, df.Graph, df.Version)
	} else {
		d = s.reg.PutRelationalVersion(df.Name, df.Universe, df.DB, df.Version)
	}
	return d, s.fund(d)
}

// fund grants the default budget to a dataset with no ledger yet. An
// existing ledger — recovered from the journal, or operator-adjusted — is
// left untouched, so re-registration and delete/re-create cycles can
// never reset spent ε.
func (s *Service) fund(d *Dataset) error {
	if _, ok := s.acct.Status(d.Name); ok {
		return nil
	}
	return s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// AddGraph registers a graph dataset and grants it the default budget
// (in-memory only — not persisted to the store; use UploadGraph for that).
func (s *Service) AddGraph(name string, g *graph.Graph) error {
	d := s.reg.PutGraph(name, g)
	return s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// AddRelational registers a relational dataset (a table catalogue plus the
// universe its annotations resolve in) and grants it the default budget
// (in-memory only — not persisted; use UploadTables for that).
func (s *Service) AddRelational(name string, u *boolexpr.Universe, db *query.Database) error {
	d := s.reg.PutRelational(name, u, db)
	return s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// GrantBudget overrides a dataset's total ε budget.
func (s *Service) GrantBudget(name string, epsilon float64) error {
	return s.acct.Grant(canonName(name), epsilon)
}

// UploadGraph validates, persists (when the service is store-backed), and
// registers an edge-list graph dataset under name. Re-uploading bumps the
// dataset's version, fencing stale cached releases; an existing ε ledger is
// preserved, so delete/re-upload cycles cannot reset spent budget.
func (s *Service) UploadGraph(name string, edgeList []byte) (DatasetInfo, error) {
	return s.upload(name, "graph",
		func(canon string) (*store.DatasetFile, error) {
			return s.store.Datasets().PutGraph(canon, edgeList)
		},
		func(canon string) (*Dataset, error) {
			g, err := graph.ReadEdgeList(bytes.NewReader(edgeList))
			if err != nil {
				return nil, err
			}
			return s.reg.PutGraph(canon, g), nil
		})
}

// UploadTables validates, persists (when store-backed), and registers a
// relational dataset: named annotated tables sharing one participant
// universe. Versioning and ledger semantics match UploadGraph.
func (s *Service) UploadTables(name string, tables map[string][]byte) (DatasetInfo, error) {
	return s.upload(name, "relational",
		func(canon string) (*store.DatasetFile, error) {
			return s.store.Datasets().PutTables(canon, tables)
		},
		func(canon string) (*Dataset, error) {
			u, db, _, err := store.ParseTables(tables)
			if err != nil {
				return nil, err
			}
			return s.reg.PutRelational(canon, u, db), nil
		})
}

// upload is the shared admin-upload flow: validate the name, persist via
// the store (which parses once; ErrBadData separates the caller's bad
// payload, a 400, from store I/O faults, a 500) or parse in memory, then
// fund the ledger if the dataset has none.
func (s *Service) upload(name, kind string,
	persist func(canon string) (*store.DatasetFile, error),
	parseMem func(canon string) (*Dataset, error),
) (DatasetInfo, error) {
	canon := canonName(name)
	if err := store.ValidateName(canon); err != nil {
		return DatasetInfo{}, badRequestf("%v", err)
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	var d *Dataset
	if s.store != nil {
		df, err := persist(canon)
		if err != nil {
			if errors.Is(err, store.ErrBadData) {
				return DatasetInfo{}, badRequestf("%s dataset %q: %v", kind, canon, err)
			}
			return DatasetInfo{}, err
		}
		if d, err = s.registerFile(df); err != nil {
			return DatasetInfo{}, err
		}
	} else {
		var err error
		if d, err = parseMem(canon); err != nil {
			return DatasetInfo{}, badRequestf("%s dataset %q: %v", kind, canon, err)
		}
		if err := s.fund(d); err != nil {
			return DatasetInfo{}, err
		}
	}
	return s.describe(d), nil
}

// DeleteDataset unregisters a dataset and removes its persisted data. The
// ε ledger deliberately survives: budget already spent on releases about
// this data is spent forever, even across delete/re-create.
func (s *Service) DeleteDataset(name string) error {
	name = canonName(name)
	if err := store.ValidateName(name); err != nil {
		return badRequestf("%v", err)
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	// Tombstone the durable copy first: if that fails, the dataset stays
	// registered and queryable, rather than vanishing from memory only to
	// resurrect from disk at the next restart.
	storeHad := false
	if s.store != nil {
		err := s.store.Datasets().Delete(name)
		if err != nil && !errors.Is(err, store.ErrNoDataset) {
			return err
		}
		storeHad = err == nil
	}
	if !s.reg.Delete(name) && !storeHad {
		return &DatasetError{Name: name}
	}
	return nil
}

// Datasets lists the registered datasets, each carrying its ε ledger
// snapshot so operators see data and budget state in one call.
func (s *Service) Datasets() []DatasetInfo {
	infos := s.reg.List()
	for i := range infos {
		if st, ok := s.acct.Status(infos[i].Name); ok {
			infos[i].Budget = &st
		}
	}
	return infos
}

// describe builds the DatasetInfo (with budget) for one dataset snapshot.
func (s *Service) describe(d *Dataset) DatasetInfo {
	info := d.info()
	if st, ok := s.acct.Status(d.Name); ok {
		info.Budget = &st
	}
	return info
}

// Budget snapshots a dataset's ε ledger.
func (s *Service) Budget(name string) (BudgetStatus, error) {
	st, ok := s.acct.Status(canonName(name))
	if !ok {
		return BudgetStatus{}, &DatasetError{Name: name}
	}
	return st, nil
}

// Query answers one differentially private query. The life of a request:
//
//  1. normalize and resolve the dataset snapshot;
//  2. consult the release cache — a recorded identical release is replayed
//     at zero additional ε, and concurrent identical queries coalesce into
//     one flight;
//  3. otherwise reserve ε from the dataset's ledger (typed rejection when
//     exhausted, spending nothing), run the mechanism on the worker pool,
//     then commit the reservation — or refund it if execution failed.
//
// Any error leaves the ledger exactly as it was.
func (s *Service) Query(ctx context.Context, req Request) (Response, error) {
	if err := req.normalize(s.cfg); err != nil {
		return Response{}, err
	}
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		return Response{}, err
	}
	key, err := req.cacheKey(ds)
	if err != nil {
		return Response{}, err
	}
	// The flight runs detached from the initiating caller's context:
	// coalesced waiters must not fail because the first arrival hung up,
	// and once ε is reserved the release should complete and be recorded
	// rather than waste the reservation. Request size caps (normalize)
	// bound each run, so orphaned flights cannot pile up unboundedly.
	flightCtx := context.WithoutCancel(ctx)
	resp, cached, err := s.cache.Do(ctx, key, func() (Response, error) {
		resv, err := s.acct.Reserve(ds.Name, req.Epsilon)
		if err != nil {
			return Response{}, err
		}
		value, err := s.exec.Execute(flightCtx, ds, &req)
		if err != nil {
			resv.Refund()
			return Response{}, err
		}
		resv.Commit()
		resp := Response{Dataset: ds.Name, Kind: req.Kind, Value: value, Epsilon: req.Epsilon}
		if s.store != nil && ds.Durable {
			// Journal the release so it replays after a restart at zero ε.
			// Only for durable datasets: their generation is a store
			// version, stable across restarts, so the key can never alias
			// different data. A failed append is safe to ignore: the
			// release just won't replay, and a post-restart repeat spends
			// fresh ε instead.
			if payload, err := json.Marshal(resp); err == nil {
				_ = s.store.Release(key, payload)
			}
		}
		return resp, nil
	})
	if err != nil {
		return Response{}, err
	}
	resp.Cached = cached
	if st, ok := s.acct.Status(ds.Name); ok {
		resp.RemainingBudget = st.Remaining
	}
	return resp, nil
}
