package service

import (
	"context"
	"runtime"

	"recmech/internal/boolexpr"
	"recmech/internal/graph"
	"recmech/internal/query"
)

// Config tunes a Service. The zero value is usable: every field has a
// sensible default filled in by New.
type Config struct {
	// DatasetBudget is the total ε granted to each dataset at registration
	// (individually adjustable later with GrantBudget). Default 10.
	DatasetBudget float64
	// DefaultEpsilon is charged when a request omits ε. Default 0.5.
	DefaultEpsilon float64
	// MaxEpsilon caps any single request's ε, so one query cannot drain a
	// dataset. 0 disables the cap (the dataset budget still applies).
	MaxEpsilon float64
	// Workers bounds concurrent mechanism runs. Default GOMAXPROCS.
	Workers int
	// Seed makes the noise streams reproducible across runs. Default 1.
	Seed int64
	// CacheEntries bounds the release cache; the oldest recorded releases
	// are evicted beyond it (a repeat then spends fresh ε). Default 4096.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.DatasetBudget <= 0 {
		c.DatasetBudget = 10
	}
	if c.DefaultEpsilon <= 0 {
		c.DefaultEpsilon = 0.5
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 4096
	}
	return c
}

// Service is the concurrent DP query service: registry + accountant +
// executor + release cache behind one Query method. Construct with New,
// register datasets, then serve Query calls from any number of goroutines
// (NewHandler adapts it to HTTP for cmd/recmechd).
type Service struct {
	cfg   Config
	reg   *Registry
	acct  *Accountant
	cache *ReleaseCache
	exec  *Executor
}

// New returns an empty service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		reg:   NewRegistry(),
		acct:  NewAccountant(),
		cache: NewReleaseCache(cfg.CacheEntries),
		exec:  NewExecutor(cfg.Workers, cfg.Seed),
	}
}

// AddGraph registers a graph dataset and grants it the default budget.
func (s *Service) AddGraph(name string, g *graph.Graph) {
	d := s.reg.PutGraph(name, g)
	s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// AddRelational registers a relational dataset (a table catalogue plus the
// universe its annotations resolve in) and grants it the default budget.
func (s *Service) AddRelational(name string, u *boolexpr.Universe, db *query.Database) {
	d := s.reg.PutRelational(name, u, db)
	s.acct.Grant(d.Name, s.cfg.DatasetBudget)
}

// GrantBudget overrides a dataset's total ε budget.
func (s *Service) GrantBudget(name string, epsilon float64) {
	s.acct.Grant(canonName(name), epsilon)
}

// Datasets lists the registered datasets.
func (s *Service) Datasets() []DatasetInfo { return s.reg.List() }

// Budget snapshots a dataset's ε ledger.
func (s *Service) Budget(name string) (BudgetStatus, error) {
	st, ok := s.acct.Status(canonName(name))
	if !ok {
		return BudgetStatus{}, &DatasetError{Name: name}
	}
	return st, nil
}

// Query answers one differentially private query. The life of a request:
//
//  1. normalize and resolve the dataset snapshot;
//  2. consult the release cache — a recorded identical release is replayed
//     at zero additional ε, and concurrent identical queries coalesce into
//     one flight;
//  3. otherwise reserve ε from the dataset's ledger (typed rejection when
//     exhausted, spending nothing), run the mechanism on the worker pool,
//     then commit the reservation — or refund it if execution failed.
//
// Any error leaves the ledger exactly as it was.
func (s *Service) Query(ctx context.Context, req Request) (Response, error) {
	if err := req.normalize(s.cfg); err != nil {
		return Response{}, err
	}
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		return Response{}, err
	}
	key, err := req.cacheKey(ds)
	if err != nil {
		return Response{}, err
	}
	// The flight runs detached from the initiating caller's context:
	// coalesced waiters must not fail because the first arrival hung up,
	// and once ε is reserved the release should complete and be recorded
	// rather than waste the reservation. Request size caps (normalize)
	// bound each run, so orphaned flights cannot pile up unboundedly.
	flightCtx := context.WithoutCancel(ctx)
	resp, cached, err := s.cache.Do(ctx, key, func() (Response, error) {
		resv, err := s.acct.Reserve(ds.Name, req.Epsilon)
		if err != nil {
			return Response{}, err
		}
		value, err := s.exec.Execute(flightCtx, ds, &req)
		if err != nil {
			resv.Refund()
			return Response{}, err
		}
		resv.Commit()
		return Response{Dataset: ds.Name, Kind: req.Kind, Value: value, Epsilon: req.Epsilon}, nil
	})
	if err != nil {
		return Response{}, err
	}
	resp.Cached = cached
	if st, ok := s.acct.Status(ds.Name); ok {
		resp.RemainingBudget = st.Remaining
	}
	return resp, nil
}
