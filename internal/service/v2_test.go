package service_test

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"recmech"
)

// newTestServerCfg is newTestServer with full config control.
func newTestServerCfg(t testing.TB, cfg recmech.ServiceConfig) (*httptest.Server, *recmech.Service) {
	t.Helper()
	svc := recmech.NewService(cfg)

	g := recmech.NewGraph(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {5, 6}, {6, 7}} {
		g.AddEdge(e[0], e[1])
	}
	svc.AddGraph("g", g)

	u := recmech.NewUniverse()
	rel, err := recmech.LoadTable(strings.NewReader(visitsTable), u)
	if err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	db := recmech.NewQueryDatabase()
	db.Register("visits", rel)
	svc.AddRelational("med", u, db)

	ts := httptest.NewServer(recmech.NewServiceHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

// doJSON lives in persist_test.go and is shared by this file.

func httpErrCode(t testing.TB, raw []byte) string {
	t.Helper()
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("unmarshal error body %q: %v", raw, err)
	}
	return errCode(t, body)
}

// TestV2PrepareAndQuery drives the compile/execute lifecycle over HTTP:
// prepare spends zero ε, the next query pays only the noise draw, and
// /v2/query answers exactly like the /v1 shim.
func TestV2PrepareAndQuery(t *testing.T) {
	ts, svc := newTestServer(t, 2.0)

	prep := recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles}
	code, raw := doJSON(t, "POST", ts.URL+"/v2/prepare", prep)
	if code != 200 {
		t.Fatalf("prepare: code %d body %s", code, raw)
	}
	var info recmech.PrepareInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Dataset != "g" || info.AlreadyPrepared {
		t.Fatalf("first prepare: %+v", info)
	}
	code, raw = doJSON(t, "POST", ts.URL+"/v2/prepare", prep)
	if code != 200 {
		t.Fatalf("second prepare: code %d", code)
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if !info.AlreadyPrepared {
		t.Fatalf("second prepare missed the plan cache: %+v", info)
	}
	// Zero ε spent by preparation.
	st, err := svc.Budget("g")
	if err != nil || st.Spent != 0 || st.Reserved != 0 {
		t.Fatalf("prepare touched the budget: %+v %v", st, err)
	}

	// The prepared query releases through /v2/query.
	code, raw = doJSON(t, "POST", ts.URL+"/v2/query",
		recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.5})
	if code != 200 {
		t.Fatalf("v2 query: code %d body %s", code, raw)
	}
	var resp recmech.ServiceResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Epsilon != 0.5 {
		t.Fatalf("v2 query: %+v", resp)
	}
	// The v1 shim replays the identical release.
	code, v1resp, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.5})
	if code != 200 || !v1resp.Cached || v1resp.Value != resp.Value {
		t.Fatalf("v1 shim diverged from v2: code %d %+v vs %+v", code, v1resp, resp)
	}

	// Prepare of invalid requests is typed like query validation.
	code, raw = doJSON(t, "POST", ts.URL+"/v2/prepare", recmech.ServiceRequest{Dataset: "nope", Kind: recmech.KindTriangles})
	if code != 404 || httpErrCode(t, raw) != "unknown_dataset" {
		t.Fatalf("prepare unknown dataset: code %d %s", code, raw)
	}
	code, raw = doJSON(t, "POST", ts.URL+"/v2/prepare", recmech.ServiceRequest{Dataset: "g", Kind: "median"})
	if code != 400 || httpErrCode(t, raw) != "bad_request" {
		t.Fatalf("prepare bad kind: code %d %s", code, raw)
	}
}

func TestV2JobsEndToEnd(t *testing.T) {
	ts, svc := newTestServer(t, 2.0)

	batch := recmech.BatchRequest{Queries: []recmech.ServiceRequest{
		{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.5},
		{Dataset: "med", Kind: recmech.KindSQL, Query: "SELECT x FROM visits", Epsilon: 0.25},
		{Dataset: "g", Kind: recmech.KindKStars, K: 2, Epsilon: 0.25},
	}}
	code, raw := doJSON(t, "POST", ts.URL+"/v2/jobs", batch)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", code, raw)
	}
	var job recmech.JobInfo
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || len(job.Items) != 3 {
		t.Fatalf("submitted job: %+v", job)
	}

	// Poll until terminal (the work is microseconds; the loop is belt and
	// braces against scheduler hiccups).
	deadline := time.Now().Add(30 * time.Second)
	for job.State != recmech.JobStateDone && job.State != recmech.JobStateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.State)
		}
		time.Sleep(2 * time.Millisecond)
		code, raw = doJSON(t, "GET", ts.URL+"/v2/jobs/"+job.ID, nil)
		if code != 200 {
			t.Fatalf("poll: code %d body %s", code, raw)
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
	}
	if job.State != recmech.JobStateDone {
		t.Fatalf("job failed: %+v", job)
	}
	for i, it := range job.Items {
		if it.State != "done" || it.Result == nil {
			t.Fatalf("item %d: %+v", i, it)
		}
		if math.IsNaN(it.Result.Value) || math.IsInf(it.Result.Value, 0) {
			t.Fatalf("item %d value: %v", i, it.Result.Value)
		}
	}
	// Per-item commits: g spent 0.75, med spent 0.25.
	if st, _ := svc.Budget("g"); math.Abs(st.Spent-0.75) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("g ledger: %+v", st)
	}
	if st, _ := svc.Budget("med"); math.Abs(st.Spent-0.25) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("med ledger: %+v", st)
	}

	// The listing is sorted by id and contains the job.
	var listing struct {
		Jobs []recmech.JobInfo `json:"jobs"`
	}
	code, raw = doJSON(t, "GET", ts.URL+"/v2/jobs", nil)
	if code != 200 {
		t.Fatalf("listing: code %d", code)
	}
	if err := json.Unmarshal(raw, &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for i, j := range listing.Jobs {
		if i > 0 && listing.Jobs[i-1].ID >= j.ID {
			t.Fatalf("job listing not sorted: %q before %q", listing.Jobs[i-1].ID, j.ID)
		}
		found = found || j.ID == job.ID
	}
	if !found {
		t.Fatalf("job %q missing from listing", job.ID)
	}

	// Canceling a finished job is a typed 409; unknown jobs are 404.
	code, raw = doJSON(t, "DELETE", ts.URL+"/v2/jobs/"+job.ID, nil)
	if code != http.StatusConflict || httpErrCode(t, raw) != "job_finished" {
		t.Fatalf("cancel finished: code %d body %s", code, raw)
	}
	code, raw = doJSON(t, "GET", ts.URL+"/v2/jobs/job-99999999", nil)
	if code != 404 || httpErrCode(t, raw) != "unknown_job" {
		t.Fatalf("unknown job: code %d body %s", code, raw)
	}
}

// TestV2JobsAtomicBudget rejects a batch whose sum exceeds the remaining
// budget with a typed 429 and an untouched ledger — all-or-nothing.
func TestV2JobsAtomicBudget(t *testing.T) {
	ts, svc := newTestServer(t, 1.0)
	batch := recmech.BatchRequest{Queries: []recmech.ServiceRequest{
		{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.6},
		{Dataset: "g", Kind: recmech.KindKStars, K: 2, Epsilon: 0.6},
	}}
	code, raw := doJSON(t, "POST", ts.URL+"/v2/jobs", batch)
	if code != http.StatusTooManyRequests || httpErrCode(t, raw) != "budget_exhausted" {
		t.Fatalf("over-budget batch: code %d body %s", code, raw)
	}
	if st, _ := svc.Budget("g"); st.Spent != 0 || st.Reserved != 0 {
		t.Fatalf("rejected batch moved the ledger: %+v", st)
	}

	// Empty and malformed batches are 400s.
	code, raw = doJSON(t, "POST", ts.URL+"/v2/jobs", recmech.BatchRequest{})
	if code != 400 || httpErrCode(t, raw) != "bad_request" {
		t.Fatalf("empty batch: code %d body %s", code, raw)
	}
	code, raw = doJSON(t, "POST", ts.URL+"/v2/jobs", recmech.BatchRequest{Queries: []recmech.ServiceRequest{
		{Dataset: "g", Kind: "median", Epsilon: 0.1},
	}})
	if code != 400 {
		t.Fatalf("bad item: code %d body %s", code, raw)
	}
	if msg := string(raw); !strings.Contains(msg, "query[0]") {
		t.Fatalf("bad-item error does not name the item: %s", msg)
	}
}

// TestUploadTooLarge pins the typed 413: an upload over the configured
// limit is rejected without buffering and names the right error code; a
// small upload still works on the same server.
func TestUploadTooLarge(t *testing.T) {
	ts, _ := newTestServerCfg(t, recmech.ServiceConfig{
		DatasetBudget:  2.0,
		MaxUploadBytes: 512,
		Workers:        2,
		Seed:           7,
	})

	big := recmech.UploadRequest{Kind: "graph", Graph: strings.Repeat("0 1\n", 1024)}
	code, raw := doJSON(t, "PUT", ts.URL+"/v1/datasets/huge", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: code %d body %s", code, raw)
	}
	if httpErrCode(t, raw) != "request_too_large" {
		t.Fatalf("oversized upload code: %s", raw)
	}

	small := recmech.UploadRequest{Kind: "graph", Graph: "0 1\n1 2\n0 2\n"}
	code, raw = doJSON(t, "PUT", ts.URL+"/v1/datasets/tiny", small)
	if code != 200 {
		t.Fatalf("small upload after rejection: code %d body %s", code, raw)
	}
}

// TestDatasetListingDeterministic registers names out of order and checks
// the listing is sorted however often it is asked.
func TestDatasetListingDeterministic(t *testing.T) {
	ts, svc := newTestServer(t, 2.0)
	for _, name := range []string{"zeta", "alpha", "mike"} {
		g := recmech.NewGraph(3)
		g.AddEdge(0, 1)
		if err := svc.AddGraph(name, g); err != nil {
			t.Fatalf("AddGraph(%s): %v", name, err)
		}
	}
	want := []string{"alpha", "g", "med", "mike", "zeta"}
	for round := 0; round < 3; round++ {
		var dsBody struct {
			Datasets []recmech.DatasetInfo `json:"datasets"`
		}
		if code := getJSON(t, ts.URL+"/v1/datasets", &dsBody); code != 200 {
			t.Fatalf("datasets: code %d", code)
		}
		if len(dsBody.Datasets) != len(want) {
			t.Fatalf("listing: %+v", dsBody.Datasets)
		}
		for i, d := range dsBody.Datasets {
			if d.Name != want[i] {
				t.Fatalf("round %d: listing[%d] = %q, want %q", round, i, d.Name, want[i])
			}
		}
	}
}

// TestV2JobCancelHTTP exercises DELETE on a live job; the outcome races the
// tiny workload, so both "canceled in time" and "already finished" are
// legal — but the budget must balance either way, and the terminal state
// must be stable. The deterministic refund semantics are pinned by the
// internal TestJobCancelRefundsUnstarted.
func TestV2JobCancelHTTP(t *testing.T) {
	ts, svc := newTestServerCfg(t, recmech.ServiceConfig{
		DatasetBudget: 100,
		Workers:       1,
		Seed:          7,
	})
	queries := make([]recmech.ServiceRequest, 20)
	for i := range queries {
		queries[i] = recmech.ServiceRequest{
			Dataset: "med",
			Kind:    recmech.KindSQL,
			Query:   fmt.Sprintf("SELECT x, y FROM visits WHERE x != 'u%d'", i),
			Epsilon: 0.5,
		}
	}
	code, raw := doJSON(t, "POST", ts.URL+"/v2/jobs", recmech.BatchRequest{Queries: queries})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", code, raw)
	}
	var job recmech.JobInfo
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}

	code, raw = doJSON(t, "DELETE", ts.URL+"/v2/jobs/"+job.ID, nil)
	switch code {
	case 200:
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
		if job.State != recmech.JobStateCanceled {
			t.Fatalf("canceled job state: %+v", job)
		}
	case http.StatusConflict:
		// Finished before the DELETE landed; fine.
	default:
		t.Fatalf("cancel: code %d body %s", code, raw)
	}

	// Wait for the runner to settle the in-flight item, then audit: spent ε
	// equals 0.5 per completed item, nothing stays reserved.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, raw = doJSON(t, "GET", ts.URL+"/v2/jobs/"+job.ID, nil)
		if code != 200 {
			t.Fatalf("poll: code %d", code)
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
		st, _ := svc.Budget("med")
		if terminalJobState(job.State) && st.Reserved == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (ledger %+v)", job.State, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	done := 0
	for _, it := range job.Items {
		if it.State == "done" {
			done++
		} else if it.Result != nil {
			t.Fatalf("non-done item carries a result: %+v", it)
		}
	}
	st, _ := svc.Budget("med")
	if math.Abs(st.Spent-0.5*float64(done)) > 1e-9 {
		t.Fatalf("spent %v for %d done items", st.Spent, done)
	}
}

func terminalJobState(s string) bool {
	switch s {
	case recmech.JobStateDone, recmech.JobStateFailed, recmech.JobStateCanceled:
		return true
	}
	return false
}
