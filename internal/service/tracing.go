package service

import (
	"context"

	"recmech/internal/trace"
)

// Tracing policy (see DESIGN.md "Per-query tracing"): a query is traced
// when it is about to do expensive work — the plan cache holds no completed
// plan for its key, so a fresh compile (or a join onto someone else's
// in-flight compile) follows — when the 1-in-N warm sampler fires
// (Config.TraceSampleEvery, off by default), or when the caller forces it
// (async job items, so every batch item is attributable after the fact).
// At default settings the plan-cached hot path therefore never starts a
// trace and pays only a planKey peek plus nil-span no-ops.

// Tracer exposes the service's span recorder, for wiring the slow-query log
// (cmd/recmechd) and for tests.
func (s *Service) Tracer() *trace.Tracer { return s.tr }

// Traces lists summaries of recently completed traces, newest first
// (GET /v1/traces). The ring is bounded by Config.TraceRingEntries.
func (s *Service) Traces() []trace.Summary { return s.tr.Recent() }

// Trace returns one retained trace's full span tree by ID
// (GET /v1/traces/{id}), failing with a *TraceError (404) when the ID is
// unknown or already evicted from the ring.
func (s *Service) Trace(id string) (*trace.TraceData, error) {
	td, ok := s.tr.Get(id)
	if !ok {
		return nil, &TraceError{ID: id}
	}
	return td, nil
}

// traceIDSlot carries a completed trace's ID out of Service.do to whoever
// installed the slot (the HTTP handlers, the job runner) — mirroring
// accessInfo rather than adding a field to Response, whose JSON is the
// durable release journal's replay payload and must not grow per-request
// metadata.
type traceIDSlot struct{ id string }

type traceIDKey struct{}

// withTraceSlot installs an empty trace-ID slot on ctx; putTraceID fills it.
func withTraceSlot(ctx context.Context) (context.Context, *traceIDSlot) {
	sl := &traceIDSlot{}
	return context.WithValue(ctx, traceIDKey{}, sl), sl
}

// putTraceID records a finished trace's ID in the caller's slot, if any.
func putTraceID(ctx context.Context, id string) {
	if id == "" {
		return
	}
	if sl, ok := ctx.Value(traceIDKey{}).(*traceIDSlot); ok {
		sl.id = id
	}
}

// annotateRoot stamps the request identity on a trace's root span. The
// attributes are all caller-supplied (nothing derived from the data), so
// exposing them through /v1/traces discloses nothing a query logger would
// not already hold.
func annotateRoot(root *trace.Span, ds *Dataset, req *Request) {
	root.Str("dataset", ds.Name).Str("kind", req.Kind).
		Str("privacy", req.Privacy).Float("epsilon", req.Epsilon)
	// The resolved compile tier, for sampled plans only (exact traces keep
	// their pre-estimator shape): callers annotate after resolveMode, so
	// "auto" never appears here.
	if req.Mode == ModeSampled {
		root.Str("mode", ModeSampled)
		if req.spec != nil {
			root.Int("samples", int64(req.spec.SampleBudget))
		}
	}
}
