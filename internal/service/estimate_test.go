package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"recmech"
)

// newEstimatorServer builds a server whose auto threshold is low enough that
// its graph dataset ("g", 8 edges) resolves to the sampled tier, with the
// accuracy surfaces exposed and the access log captured.
func newEstimatorServer(t testing.TB) (*httptest.Server, *recmech.Service, *bytes.Buffer) {
	t.Helper()
	svc := recmech.NewService(recmech.ServiceConfig{
		DatasetBudget:     10,
		DefaultEpsilon:    0.5,
		Workers:           4,
		Seed:              7,
		ExposeAccuracy:    true,
		EstimateThreshold: 1, // every graph dataset auto-samples
		EstimateSamples:   2000,
	})
	g := recmech.NewGraph(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {5, 6}, {6, 7}} {
		g.AddEdge(e[0], e[1])
	}
	if err := svc.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	l, err := recmech.NewAccessLogger(&logBuf, "text")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(recmech.WithAccessLog(recmech.NewServiceHandler(svc), l))
	t.Cleanup(ts.Close)
	return ts, svc, &logBuf
}

// TestInvalidModeHTTP pins the typed 400: every bad mode/samples combination
// answers with code "invalid_mode", not the generic bad_request.
func TestInvalidModeHTTP(t *testing.T) {
	ts, _ := newTestServer(t, 2.0)
	cases := []map[string]any{
		{"dataset": "g", "kind": "triangles", "mode": "approximate"},
		{"dataset": "med", "kind": "sql", "query": "SELECT x FROM visits", "mode": "sampled"},
		{"dataset": "g", "kind": "triangles", "samples": -1},
		{"dataset": "g", "kind": "triangles", "mode": "exact", "samples": 100},
		{"dataset": "g", "kind": "triangles", "mode": "sampled", "samples": 100_000_000},
	}
	for i, req := range cases {
		code, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/query", req)
		if code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%s)", i, code, raw)
		}
		if got := httpErrCode(t, raw); got != "invalid_mode" {
			t.Errorf("case %d: error code %q, want invalid_mode", i, got)
		}
	}
	// The same validation guards /v2/advise and /v2/prepare.
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/prepare", map[string]any{
		"dataset": "g", "kind": "triangles", "mode": "bogus",
	})
	if code != http.StatusBadRequest || httpErrCode(t, raw) != "invalid_mode" {
		t.Errorf("prepare with a bogus mode: status %d code %q, want 400 invalid_mode", code, httpErrCode(t, raw))
	}
}

// TestSampledQueryEndToEnd drives one sampled query through every surface the
// estimator tier touches: the response mode, replay at zero ε, the prepare
// estimate block, /v1/stats, and the access log.
func TestSampledQueryEndToEnd(t *testing.T) {
	ts, svc, logBuf := newEstimatorServer(t)

	// Prepare first: the mode resolves to sampled and (on this opted-in
	// server) the estimator contract is reported — never the estimate value.
	var prep recmech.PrepareInfo
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/prepare", map[string]any{"dataset": "g", "kind": "triangles"})
	if code != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Mode != recmech.ModeSampled {
		t.Fatalf("prepare mode %q, want sampled (auto over the threshold)", prep.Mode)
	}
	if prep.Estimate == nil {
		t.Fatal("prepare on an exposing server carries no estimate block")
	}
	if prep.Estimate.Method == "" || prep.Estimate.Samples <= 0 || prep.Estimate.Confidence <= 0 {
		t.Errorf("estimate block incomplete: %+v", prep.Estimate)
	}
	if prep.Compile == nil || prep.Compile.Mode != recmech.ModeSampled {
		t.Errorf("compile profile %+v, want mode sampled", prep.Compile)
	}

	// Query: a fresh sampled release, then a zero-ε replay of it.
	code, resp, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles})
	if code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if resp.Mode != recmech.ModeSampled {
		t.Fatalf("response mode %q, want sampled", resp.Mode)
	}
	if resp.Cached {
		t.Fatal("first sampled query reported cached")
	}
	code, resp2, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles})
	if code != http.StatusOK || !resp2.Cached {
		t.Fatalf("repeat: status %d cached %v, want a replay", code, resp2.Cached)
	}
	if resp2.Value != resp.Value || resp2.Mode != recmech.ModeSampled {
		t.Errorf("replay = %g/%q, want the recorded %g/%q", resp2.Value, resp2.Mode, resp.Value, resp.Mode)
	}

	// An explicit exact query of the same workload is a different release.
	code, respExact, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Mode: recmech.ModeExact})
	if code != http.StatusOK {
		t.Fatalf("exact query: status %d", code)
	}
	if respExact.Cached {
		t.Fatal("exact query replayed the sampled release — cache keys must separate modes")
	}
	if respExact.Mode != "" {
		t.Errorf("exact response mode %q, want empty (replay-payload compatibility)", respExact.Mode)
	}

	// /v1/stats: the estimator section counts both tiers.
	st := svc.Stats()
	if st.Estimator == nil {
		t.Fatal("stats carry no estimator section after sampled releases")
	}
	if st.Estimator.SampledReleases != 1 || st.Estimator.ExactReleases != 1 {
		t.Errorf("estimator stats %+v, want 1 sampled and 1 exact release", st.Estimator)
	}
	if st.Estimator.MeanContractRelError <= 0 {
		t.Errorf("mean contract rel error %g, want positive", st.Estimator.MeanContractRelError)
	}

	// The access log attributes each answer to its tier.
	log := logBuf.String()
	if !strings.Contains(log, "mode=sampled") {
		t.Errorf("access log carries no mode=sampled line:\n%s", log)
	}
	if !strings.Contains(log, "mode=exact") {
		t.Errorf("access log carries no mode=exact line:\n%s", log)
	}
}

// TestSampledAdvise: the composed bound surfaces the sampler term and the
// estimator contract through /v2/advise.
func TestSampledAdvise(t *testing.T) {
	ts, _, _ := newEstimatorServer(t)
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v2/advise", map[string]any{
		"dataset": "g", "kind": "triangles", "epsilon": 0.5,
	})
	if code != http.StatusOK {
		t.Fatalf("advise: status %d: %s", code, raw)
	}
	var info recmech.AdviseInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Mode != recmech.ModeSampled {
		t.Fatalf("advise mode %q, want sampled", info.Mode)
	}
	if info.Estimate == nil {
		t.Fatal("advise on a sampled plan carries no estimate contract")
	}
	if info.AtEpsilon == nil {
		t.Fatal("advise carries no atEpsilon profile")
	}
	if info.AtEpsilon.SamplerTerm <= 0 {
		t.Errorf("samplerTerm = %g, want positive for a sampled plan", info.AtEpsilon.SamplerTerm)
	}
	if got, want := info.AtEpsilon.Error, info.AtEpsilon.NoiseTerm+info.AtEpsilon.SamplerTerm; got != want {
		t.Errorf("error %g ≠ noiseTerm+samplerTerm %g", got, want)
	}
}

// TestSampledReplayDeterministic: two identically seeded services produce
// bit-identical sampled releases — the whole pipeline (estimator stream and
// noise stream) is a function of workload and seed.
func TestSampledReplayDeterministic(t *testing.T) {
	value := func() float64 {
		ts, _, _ := newEstimatorServer(t)
		code, resp, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.25})
		if code != http.StatusOK {
			t.Fatalf("query: status %d", code)
		}
		return resp.Value
	}
	if v1, v2 := value(), value(); v1 != v2 {
		t.Fatalf("same-seed services released %g and %g, want bit-identical", v1, v2)
	}
}

// TestAutoThresholdResolution: below the threshold auto stays exact; a
// negative threshold disables auto-sampling even on huge requests; an
// explicit sampled request works regardless of size.
func TestAutoThresholdResolution(t *testing.T) {
	ts, _ := newTestServerCfg(t, recmech.ServiceConfig{
		DatasetBudget:     10,
		Workers:           2,
		Seed:              7,
		EstimateThreshold: 1000, // the 8-edge test graph stays exact
	})
	code, resp, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles})
	if code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if resp.Mode != "" {
		t.Fatalf("auto under the threshold resolved to %q, want exact (empty mode)", resp.Mode)
	}
	code, resp, _ = postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Mode: recmech.ModeSampled})
	if code != http.StatusOK || resp.Mode != recmech.ModeSampled {
		t.Fatalf("explicit sampled: status %d mode %q, want 200 sampled", code, resp.Mode)
	}

	tsOff, _ := newTestServerCfg(t, recmech.ServiceConfig{
		DatasetBudget:     10,
		Workers:           2,
		Seed:              7,
		EstimateThreshold: -1, // auto never samples
	})
	code, resp, _ = postQuery(t, tsOff, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles})
	if code != http.StatusOK || resp.Mode != "" {
		t.Fatalf("auto with sampling disabled: status %d mode %q, want 200 exact", code, resp.Mode)
	}
}

// TestSampledMillionNodeEndToEnd is the acceptance run: a triangle query on
// a synthetic million-node graph completes end to end in sampled mode, with
// the tier choice and contract visible in the access log and /v1/stats. The
// same workload in exact mode would enumerate for hours; the estimator
// answers in well under a second.
func TestSampledMillionNodeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node fixture generation is seconds of work; skipped under -short")
	}
	svc := recmech.NewService(recmech.ServiceConfig{
		DatasetBudget:  10,
		DefaultEpsilon: 0.5,
		Workers:        2,
		Seed:           7,
		ExposeAccuracy: true,
		// EstimateThreshold left at the default 500 000: the 2M-edge graph
		// must cross it on its own.
	})
	g := recmech.RandomClusteredGraph(recmech.NewRand(1), 1_000_000, 2_000_000, 0.3)
	if err := svc.AddGraph("big", g); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	l, err := recmech.NewAccessLogger(&logBuf, "json")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(recmech.WithAccessLog(recmech.NewServiceHandler(svc), l))
	defer ts.Close()

	code, resp, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "big", Kind: recmech.KindTriangles})
	if code != http.StatusOK {
		t.Fatalf("million-node query: status %d", code)
	}
	if resp.Mode != recmech.ModeSampled {
		t.Fatalf("auto on a 2M-edge graph resolved to %q, want sampled", resp.Mode)
	}

	st := svc.Stats()
	if st.Estimator == nil || st.Estimator.SampledReleases != 1 {
		t.Fatalf("estimator stats %+v, want one sampled release", st.Estimator)
	}

	var entry recmech.AccessEntry
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("access log %q: %v", logBuf.String(), err)
	}
	if entry.Mode != recmech.ModeSampled || entry.Dataset != "big" || entry.Outcome != "spent" {
		t.Errorf("access entry %+v, want mode=sampled dataset=big outcome=spent", entry)
	}
}
