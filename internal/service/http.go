package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxBodyBytes bounds a /v1/query body; queries are short texts.
const maxBodyBytes = 1 << 20

// NewHandler adapts a Service to HTTP/JSON:
//
//	POST /v1/query            Request  → Response
//	GET  /v1/datasets         → {"datasets": [DatasetInfo…]}
//	GET  /v1/budget/{dataset} → BudgetStatus
//	GET  /healthz             → {"status": "ok"}
//
// Errors come back as {"error": {"code", "message"}} with the status
// mirroring the typed error: 429 for an exhausted budget, 404 for an
// unknown dataset, 400 for a bad request, 500 otherwise.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, badRequestf("invalid JSON body: %v", err))
			return
		}
		resp, err := s.Query(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": s.Datasets()})
	})
	mux.HandleFunc("GET /v1/budget/{dataset}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Budget(r.PathValue("dataset"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Remaining reports the unreserved ε on budget_exhausted errors so a
	// client can lower its ask instead of blindly retrying.
	Remaining *float64 `json:"remaining,omitempty"`
}

func writeError(w http.ResponseWriter, err error) {
	detail := errorDetail{Code: "internal", Message: err.Error()}
	status := http.StatusInternalServerError
	var be *BudgetError
	switch {
	case errors.As(err, &be):
		status = http.StatusTooManyRequests
		detail.Code = "budget_exhausted"
		rem := be.Remaining
		detail.Remaining = &rem
	case errors.Is(err, ErrUnknownDataset):
		status = http.StatusNotFound
		detail.Code = "unknown_dataset"
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
		detail.Code = "bad_request"
	}
	writeJSON(w, status, errorBody{Error: detail})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing left to do
}
