package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"recmech/internal/metrics"
)

// maxBodyBytes bounds a query/prepare/jobs body; queries are short texts
// (a maximal batch of maximal queries still fits comfortably).
const maxBodyBytes = 1 << 20

// StatusClientClosedRequest is the de-facto (nginx) status for a request
// whose client hung up before the answer was ready. net/http has no
// constant for it.
const StatusClientClosedRequest = 499

// UploadRequest is the body of PUT /v1/datasets/{name}: an edge-list graph
// or a set of annotated tables, carried as text in the formats the loaders
// accept (see graph.ReadEdgeList and query.LoadTable).
type UploadRequest struct {
	Kind   string            `json:"kind"`             // "graph" or "relational"
	Graph  string            `json:"graph,omitempty"`  // kind "graph": edge-list text
	Tables map[string]string `json:"tables,omitempty"` // kind "relational": table name → table text
}

// BatchRequest is the body of POST /v2/jobs: a batch of queries admitted
// atomically against the privacy budget and executed asynchronously.
type BatchRequest struct {
	Queries []Request `json:"queries"`
}

// NewHandler adapts a Service to HTTP/JSON.
//
// v2 — the compile/execute lifecycle:
//
//	POST   /v2/query            Request → Response (plan-cached execution)
//	POST   /v2/prepare          Request → PrepareInfo (warm a plan, zero ε)
//	POST   /v2/advise           AdviseRequest → AdviseInfo (Theorem 1 accuracy, zero ε; needs -expose-accuracy)
//	POST   /v2/jobs             BatchRequest → 202 + JobInfo (atomic ε reservation)
//	GET    /v2/jobs             → {"jobs": [JobInfo…]} (sorted by id)
//	GET    /v2/jobs/{id}        → JobInfo
//	DELETE /v2/jobs/{id}        → JobInfo (canceled; un-started items refunded)
//
// v1 — wire-compatible shims over the same core:
//
//	POST   /v1/query            Request  → Response
//	GET    /v1/datasets         → {"datasets": [DatasetInfo…]} (sorted by name)
//	PUT    /v1/datasets/{name}  UploadRequest → DatasetInfo
//	PATCH  /v1/datasets/{name}  AppendRequest → DatasetInfo (delta append; see AppendDataset)
//	DELETE /v1/datasets/{name}  → 204
//	GET    /v1/budget/{dataset} → BudgetStatus
//	GET    /healthz             → {"status": "ok"}
//
// Observability:
//
//	GET    /metrics                   Prometheus text format (MetricsRegistry)
//	GET    /v1/stats                  → ServiceStats (service-wide JSON snapshot)
//	GET    /v1/datasets/{name}/stats  → DatasetStats (per-dataset counters, ε rate)
//	GET    /v1/traces                 → {"traces": [trace.Summary…]} (newest first)
//	GET    /v1/traces/{id}            → trace.TraceData (full span tree)
//
// A traced query or prepare (fresh compiles always are; see DESIGN.md
// "Per-query tracing") answers with an X-Recmech-Trace-Id header naming its
// span tree, on error responses too.
//
// Every request is counted in recmech_http_requests_total and timed in
// recmech_http_request_duration_seconds; wrap the returned handler with
// WithAccessLog for structured per-request logging (traced requests carry
// their trace ID there as well).
//
// Errors come back as {"error": {"code", "message"}} with the status
// mirroring the typed error: 429 for an exhausted budget, 404 for an
// unknown dataset or job, 409 for canceling a finished job, 413 for an
// oversized body, 403 for accuracy requests without the -expose-accuracy
// opt-in, 400 for a bad request (code "invalid_tail" for an out-of-range
// tail parameter, "invalid_mode" for a bad compile-mode selection), 499/504
// for a canceled or timed out request, 500 otherwise.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	// POST /v1/query and POST /v2/query are the same core: v1 was already
	// a single-query execute, and the plan layer slots in underneath it.
	query := func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := decodeJSON(w, r, maxBodyBytes, &req); err != nil {
			writeError(w, err)
			return
		}
		ctx, tid := withTraceSlot(r.Context())
		resp, err := s.Query(ctx, req)
		// The trace ID travels in a response header, not the Response body:
		// that JSON is the durable release journal's replay payload, and a
		// per-request ID inside it would be replayed as stale metadata. Set
		// before writeJSON/writeError so it reaches error responses too.
		if tid.id != "" {
			w.Header().Set("X-Recmech-Trace-Id", tid.id)
			annotateTrace(r, tid.id)
		}
		if err != nil {
			// Query normalizes a by-value copy, so a defaulted ε is not
			// reflected in req — substitute it here, or a rejected
			// default-ε query would log eps=0 and the operator auditing
			// the 429 could not see what was actually asked.
			eps := req.Epsilon
			if eps == 0 {
				eps = s.cfg.DefaultEpsilon
			}
			annotate(r, canonName(req.Dataset), eps, budgetOutcome(false, err))
			writeError(w, err)
			return
		}
		annotate(r, resp.Dataset, resp.Epsilon, budgetOutcome(resp.Cached, nil))
		writeJSON(w, http.StatusOK, resp)
	}
	mux.HandleFunc("POST /v1/query", query)
	mux.HandleFunc("POST /v2/query", query)
	mux.HandleFunc("POST /v2/prepare", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := decodeJSON(w, r, maxBodyBytes, &req); err != nil {
			writeError(w, err)
			return
		}
		ctx, tid := withTraceSlot(r.Context())
		info, err := s.Prepare(ctx, req)
		if tid.id != "" {
			w.Header().Set("X-Recmech-Trace-Id", tid.id)
			annotateTrace(r, tid.id)
		}
		if err != nil {
			annotate(r, canonName(req.Dataset), 0, "none")
			writeError(w, err)
			return
		}
		annotate(r, info.Dataset, 0, "prepared")
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v2/advise", func(w http.ResponseWriter, r *http.Request) {
		var req AdviseRequest
		if err := decodeJSON(w, r, maxBodyBytes, &req); err != nil {
			writeError(w, err)
			return
		}
		ctx, tid := withTraceSlot(r.Context())
		info, err := s.Advise(ctx, req)
		if tid.id != "" {
			w.Header().Set("X-Recmech-Trace-Id", tid.id)
			annotateTrace(r, tid.id)
		}
		if err != nil {
			annotate(r, canonName(req.Dataset), 0, "none")
			writeError(w, err)
			return
		}
		// ε stays 0 in the access log: advice never touches the budget.
		annotate(r, info.Dataset, 0, "advised")
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		var batch BatchRequest
		if err := decodeJSON(w, r, maxBodyBytes, &batch); err != nil {
			writeError(w, err)
			return
		}
		info, err := s.SubmitJob(batch.Queries)
		if err != nil {
			annotate(r, "", 0, budgetOutcome(false, err))
			writeError(w, err)
			return
		}
		var total float64
		for _, it := range info.Items {
			total += it.Epsilon
		}
		annotate(r, "", total, "reserved")
		writeJSON(w, http.StatusAccepted, info)
	})
	mux.HandleFunc("GET /v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
	})
	mux.HandleFunc("GET /v2/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.JobStatus(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v2/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.CancelJob(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": s.Datasets()})
	})
	mux.HandleFunc("PUT /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		var up UploadRequest
		if err := decodeJSON(w, r, s.cfg.MaxUploadBytes, &up); err != nil {
			writeError(w, err)
			return
		}
		name := r.PathValue("name")
		var (
			info DatasetInfo
			err  error
		)
		switch up.Kind {
		case "graph":
			info, err = s.UploadGraph(name, []byte(up.Graph))
		case "relational":
			tables := make(map[string][]byte, len(up.Tables))
			for tbl, text := range up.Tables {
				tables[tbl] = []byte(text)
			}
			info, err = s.UploadTables(name, tables)
		default:
			err = badRequestf("kind must be \"graph\" or \"relational\", got %q", up.Kind)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("PATCH /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		var ap AppendRequest
		if err := decodeJSON(w, r, s.cfg.MaxUploadBytes, &ap); err != nil {
			writeError(w, err)
			return
		}
		info, err := s.AppendDataset(r.PathValue("name"), ap)
		if err != nil {
			writeError(w, err)
			return
		}
		annotate(r, info.Name, 0, "appended")
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteDataset(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/budget/{dataset}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Budget(r.PathValue("dataset"))
		if err != nil {
			writeError(w, err)
			return
		}
		annotate(r, st.Dataset, 0, "")
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"traces": s.Traces()})
	})
	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		td, err := s.Trace(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, td)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.DatasetStats(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		annotate(r, st.Dataset, 0, "")
		writeJSON(w, http.StatusOK, st)
	})
	mux.Handle("GET /metrics", metrics.Handler(s.met.reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// The instrumentation wrapper counts and times every request,
	// including unmatched routes (the mux's own 404s).
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		mux.ServeHTTP(rec, r)
		s.met.httpCode(rec.statusOr200()).Inc()
		s.met.httpDur.ObserveSince(start)
	})
}

// decodeJSON decodes a strict-JSON body bounded by limit. Exceeding the
// limit aborts the read mid-stream and surfaces as a typed 413 rather than
// a generic decode failure, so clients can tell "shrink the upload" apart
// from "fix the JSON".
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &TooLargeError{Limit: mbe.Limit}
		}
		return badRequestf("invalid JSON body: %v", err)
	}
	return nil
}

type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Remaining reports the unreserved ε on budget_exhausted errors so a
	// client can lower its ask instead of blindly retrying.
	Remaining *float64 `json:"remaining,omitempty"`
}

func writeError(w http.ResponseWriter, err error) {
	detail := errorDetail{Code: "internal", Message: err.Error()}
	status := http.StatusInternalServerError
	var be *BudgetError
	switch {
	case errors.As(err, &be):
		status = http.StatusTooManyRequests
		detail.Code = "budget_exhausted"
		rem := be.Remaining
		detail.Remaining = &rem
	case errors.Is(err, ErrUnknownDataset):
		status = http.StatusNotFound
		detail.Code = "unknown_dataset"
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
		detail.Code = "unknown_job"
	case errors.Is(err, ErrUnknownTrace):
		status = http.StatusNotFound
		detail.Code = "unknown_trace"
	case errors.Is(err, ErrJobFinished):
		status = http.StatusConflict
		detail.Code = "job_finished"
	case errors.Is(err, ErrJobsBusy):
		status = http.StatusTooManyRequests
		detail.Code = "too_many_jobs"
	case errors.Is(err, ErrRequestTooLarge):
		status = http.StatusRequestEntityTooLarge
		detail.Code = "request_too_large"
	// invalid_tail and invalid_mode before bad_request: TailError and
	// ModeError match both sentinels, and the more specific code wins.
	case errors.Is(err, ErrInvalidTail):
		status = http.StatusBadRequest
		detail.Code = "invalid_tail"
	case errors.Is(err, ErrInvalidMode):
		status = http.StatusBadRequest
		detail.Code = "invalid_mode"
	case errors.Is(err, ErrAccuracyDisabled):
		status = http.StatusForbidden
		detail.Code = "accuracy_disabled"
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
		detail.Code = "bad_request"
	case errors.Is(err, context.Canceled):
		status = StatusClientClosedRequest
		detail.Code = "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		detail.Code = "deadline_exceeded"
	}
	writeJSON(w, status, errorBody{Error: detail})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing left to do
}
