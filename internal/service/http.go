package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxBodyBytes bounds a /v1/query body; queries are short texts.
const maxBodyBytes = 1 << 20

// maxUploadBytes bounds a dataset upload body.
const maxUploadBytes = 64 << 20

// UploadRequest is the body of PUT /v1/datasets/{name}: an edge-list graph
// or a set of annotated tables, carried as text in the formats the loaders
// accept (see graph.ReadEdgeList and query.LoadTable).
type UploadRequest struct {
	Kind   string            `json:"kind"`             // "graph" or "relational"
	Graph  string            `json:"graph,omitempty"`  // kind "graph": edge-list text
	Tables map[string]string `json:"tables,omitempty"` // kind "relational": table name → table text
}

// NewHandler adapts a Service to HTTP/JSON:
//
//	POST   /v1/query            Request  → Response
//	GET    /v1/datasets         → {"datasets": [DatasetInfo…]} (with budgets)
//	PUT    /v1/datasets/{name}  UploadRequest → DatasetInfo
//	DELETE /v1/datasets/{name}  → 204
//	GET    /v1/budget/{dataset} → BudgetStatus
//	GET    /healthz             → {"status": "ok"}
//
// Errors come back as {"error": {"code", "message"}} with the status
// mirroring the typed error: 429 for an exhausted budget, 404 for an
// unknown dataset, 400 for a bad request, 500 otherwise.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, badRequestf("invalid JSON body: %v", err))
			return
		}
		resp, err := s.Query(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": s.Datasets()})
	})
	mux.HandleFunc("PUT /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		var up UploadRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&up); err != nil {
			writeError(w, badRequestf("invalid JSON body: %v", err))
			return
		}
		name := r.PathValue("name")
		var (
			info DatasetInfo
			err  error
		)
		switch up.Kind {
		case "graph":
			info, err = s.UploadGraph(name, []byte(up.Graph))
		case "relational":
			tables := make(map[string][]byte, len(up.Tables))
			for tbl, text := range up.Tables {
				tables[tbl] = []byte(text)
			}
			info, err = s.UploadTables(name, tables)
		default:
			err = badRequestf("kind must be \"graph\" or \"relational\", got %q", up.Kind)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteDataset(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/budget/{dataset}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Budget(r.PathValue("dataset"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Remaining reports the unreserved ε on budget_exhausted errors so a
	// client can lower its ask instead of blindly retrying.
	Remaining *float64 `json:"remaining,omitempty"`
}

func writeError(w http.ResponseWriter, err error) {
	detail := errorDetail{Code: "internal", Message: err.Error()}
	status := http.StatusInternalServerError
	var be *BudgetError
	switch {
	case errors.As(err, &be):
		status = http.StatusTooManyRequests
		detail.Code = "budget_exhausted"
		rem := be.Remaining
		detail.Remaining = &rem
	case errors.Is(err, ErrUnknownDataset):
		status = http.StatusNotFound
		detail.Code = "unknown_dataset"
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
		detail.Code = "bad_request"
	}
	writeJSON(w, status, errorBody{Error: detail})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing left to do
}
