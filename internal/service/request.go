package service

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"recmech/internal/estimate"
	"recmech/internal/plan"
)

// Query kinds accepted by the service (aliases of the plan package's kind
// strings, which own the workload semantics).
const (
	KindSQL        = plan.KindSQL        // SQL-like query against a relational dataset
	KindTriangles  = plan.KindTriangles  // triangle count on a graph dataset
	KindKStars     = plan.KindKStars     // k-star count (K required)
	KindKTriangles = plan.KindKTriangles // k-triangle count (K required)
	KindPattern    = plan.KindPattern    // arbitrary connected pattern count
)

// Workload size ceilings, owned by internal/plan (see the rationale there).
const (
	MaxK            = plan.MaxK
	MaxPatternNodes = plan.MaxPatternNodes
	MaxPatternEdges = plan.MaxPatternEdges
)

// Compile modes accepted on the wire. ModeAuto is resolved against the
// dataset (resolveMode) before anything keyed on the workload happens; the
// plan layer only ever sees exact or sampled.
const (
	ModeAuto    = "auto"
	ModeExact   = plan.ModeExact
	ModeSampled = plan.ModeSampled
)

// Request is one differentially private query. Exactly the fields relevant
// to Kind must be set; Epsilon ≤ 0 takes the server's default.
type Request struct {
	Dataset string `json:"dataset"`
	Kind    string `json:"kind"`

	Query string `json:"query,omitempty"` // sql: the query text

	K            int      `json:"k,omitempty"`            // kstars/ktriangles: the k
	PatternNodes int      `json:"patternNodes,omitempty"` // pattern: node count
	PatternEdges [][2]int `json:"patternEdges,omitempty"` // pattern: edges on 0..patternNodes-1

	Privacy string  `json:"privacy,omitempty"` // "node" (default) or "edge"; graph kinds only
	Epsilon float64 `json:"epsilon,omitempty"` // privacy budget for this release

	// Mode selects the compile tier for graph kinds: "exact" (exhaustive
	// enumeration + the full recursive mechanism), "sampled" (the estimator
	// tier of internal/estimate), or "auto"/"" (the server picks by dataset
	// size against its -estimate-threshold). SQL always compiles exactly;
	// asking for "sampled" there is a typed invalid_mode rejection.
	Mode string `json:"mode,omitempty"`
	// Samples overrides the estimator's sample budget in sampled mode
	// (0 = the server's -estimate-samples default). Part of the workload's
	// cache identity: different budgets are different computations.
	Samples int `json:"samples,omitempty"`

	// spec is the validated plan.Spec compiled by normalize: the canonical
	// workload identity (with the SQL parse tree cached), shared by the
	// cache keys and the executor so the text is lexed once per request.
	spec *plan.Spec
	// pkey caches the derived plan-cache key (see ensurePlanKey): the
	// serving layer consults it twice per request — once deciding whether
	// to trace, once fetching the plan — and deriving it twice would put
	// an extra formatting allocation on the hot path.
	pkey string
}

// Response is one differentially private answer. Only already-released
// values appear here — never the true answer or the sensitivity proxy Δ,
// which are not private.
type Response struct {
	Dataset string  `json:"dataset"`
	Kind    string  `json:"kind"`
	Value   float64 `json:"value"`   // the ε-DP answer
	Epsilon float64 `json:"epsilon"` // ε charged when the release was produced
	// Cached reports that this reply replayed a recorded release (or joined
	// an in-flight identical query) and therefore cost zero additional ε.
	Cached bool `json:"cached"`
	// RemainingBudget is the dataset's unreserved ε after this reply.
	RemainingBudget float64 `json:"remainingBudget"`
	// Mode is "sampled" when the answer came from the estimator tier
	// (omitted for exact releases, so pre-estimator recorded payloads and
	// exact-mode responses are byte-identical to earlier versions). A
	// replayed response reports the mode of the recorded release — the
	// sampled segment in the cache key guarantees it matches the request's.
	Mode string `json:"mode,omitempty"`
}

// normalize validates the request in place, lowercasing the enum-ish fields,
// substituting defaults, and compiling the workload spec (which parses SQL
// exactly once). All failures are RequestErrors.
func (r *Request) normalize(cfg Config) error {
	r.Dataset = canonName(r.Dataset)
	r.Kind = strings.ToLower(strings.TrimSpace(r.Kind))
	r.Privacy = strings.ToLower(strings.TrimSpace(r.Privacy))
	if r.Dataset == "" {
		return badRequestf("dataset is required")
	}
	if r.Epsilon == 0 {
		r.Epsilon = cfg.DefaultEpsilon
	}
	// NaN compares false with everything, so "<= 0" alone would let a NaN
	// ε through validation and poison the ledger.
	if math.IsNaN(r.Epsilon) || math.IsInf(r.Epsilon, 0) || r.Epsilon <= 0 {
		return badRequestf("epsilon must be positive and finite, got %g", r.Epsilon)
	}
	if cfg.MaxEpsilon > 0 && r.Epsilon > cfg.MaxEpsilon {
		return badRequestf("epsilon %g exceeds the per-query ceiling %g", r.Epsilon, cfg.MaxEpsilon)
	}
	switch r.Privacy {
	case "", "node":
		r.Privacy = "node"
	case "edge":
	default:
		return badRequestf("privacy must be \"node\" or \"edge\", got %q", r.Privacy)
	}
	r.Mode = strings.ToLower(strings.TrimSpace(r.Mode))
	switch r.Mode {
	case "":
		r.Mode = ModeAuto
	case ModeAuto, ModeExact:
	case ModeSampled:
		if r.Kind == KindSQL {
			return modeErrorf("mode %q applies to graph kinds only; kind %q always compiles exactly", ModeSampled, KindSQL)
		}
	default:
		return modeErrorf("mode must be %q, %q or %q, got %q", ModeAuto, ModeExact, ModeSampled, r.Mode)
	}
	if r.Samples != 0 && r.Mode == ModeExact {
		return modeErrorf("samples applies to mode %q only", ModeSampled)
	}
	if r.Samples < 0 || r.Samples > estimate.MaxSamples {
		return modeErrorf("samples must be in [0, %d], got %d", estimate.MaxSamples, r.Samples)
	}
	spec := &plan.Spec{
		Kind:         r.Kind,
		Query:        r.Query,
		K:            r.K,
		PatternNodes: r.PatternNodes,
		PatternEdges: r.PatternEdges,
		EdgePrivacy:  r.Privacy == "edge",
	}
	if err := spec.Validate(); err != nil {
		return asRequestError(err)
	}
	r.spec = spec
	return nil
}

// resolveMode decides the compile tier once the dataset is known, turning
// the wire-level "auto" into exact or sampled and stamping the decision
// (and the resolved sample budget) onto the workload spec — which is what
// the cache keys derive from, so a sampled estimate can never replay as an
// exact answer or vice versa. Must run after normalize and before any
// cacheKey/ensurePlanKey derivation.
//
// Auto samples exactly when the dataset is a graph at least
// cfg.EstimateThreshold edges large (threshold ≤ 0 disables auto-sampling).
// Relational datasets always compile exactly — normalize already rejected
// an explicit sampled request against KindSQL, and a graph-kind request
// against a relational dataset fails in the compiler with its usual typed
// error, so stamping exact here is never wrong.
func (r *Request) resolveMode(ds *Dataset, cfg Config) {
	mode := r.Mode
	if ds.Graph == nil {
		mode = ModeExact
	} else if mode == ModeAuto {
		if cfg.EstimateThreshold > 0 && ds.Graph.NumEdges() >= cfg.EstimateThreshold {
			mode = ModeSampled
		} else {
			mode = ModeExact
		}
	}
	r.Mode = mode
	if mode == ModeSampled {
		r.spec.Mode = plan.ModeSampled
		if r.Samples > 0 {
			r.spec.SampleBudget = r.Samples
		} else {
			r.spec.SampleBudget = cfg.EstimateSamples
		}
	} else {
		r.spec.Mode = plan.ModeExact
		r.spec.SampleBudget = 0
	}
}

// asRequestError converts a caller-caused plan failure into the service's
// typed 400; anything else passes through unchanged.
func asRequestError(err error) error {
	var se *plan.SpecError
	if errors.As(err, &se) {
		return &RequestError{Reason: se.Reason}
	}
	return err
}

// genTag separates durable and in-memory snapshot namespaces in cache keys:
// a flag-loaded dataset's per-boot gen 1 and a later upload's store version
// 1 are different data and must never share a recorded release or a plan.
func genTag(ds *Dataset) string {
	if ds.Durable {
		return "@v"
	}
	return "#"
}

// cacheKey derives the release-cache key: two requests share a key exactly
// when they would replay the same recorded release — same dataset snapshot
// (name and generation), same canonicalized query, same privacy model and
// budget. SQL text is canonicalized through the parser, so formatting and
// keyword-case differences still hit the cache.
//
// The format is part of the durable store's release journal and must stay
// byte-identical across versions, or persisted releases stop replaying.
func (r *Request) cacheKey(ds *Dataset) (string, error) {
	detail, err := r.spec.Detail()
	if err != nil {
		return "", asRequestError(err)
	}
	return fmt.Sprintf("%s%s%d|%s|%s|eps=%.17g|%s", ds.Name, genTag(ds), ds.Gen, r.Kind, r.Privacy, r.Epsilon, detail), nil
}

// ensurePlanKey derives the plan-cache key — the cache key minus ε, because
// a plan materializes only the deterministic, ε-independent state — caching
// it on the request so repeated consultations within one serving pass cost
// nothing. The key is in-memory only (never persisted), so its format is
// free to change. A Request is owned by one serving goroutine (Query and the
// job runner each copy before calling do), so the cache field needs no
// synchronization.
func (r *Request) ensurePlanKey(ds *Dataset) (string, error) {
	if r.pkey != "" {
		return r.pkey, nil
	}
	k, err := r.spec.Key()
	if err != nil {
		return "", asRequestError(err)
	}
	r.pkey = fmt.Sprintf("%s%s%d|%s", ds.Name, genTag(ds), ds.Gen, k)
	return r.pkey, nil
}
