package service

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"recmech/internal/graph"
	"recmech/internal/query"
	"recmech/internal/subgraph"
)

// Query kinds accepted by the service.
const (
	KindSQL        = "sql"        // SQL-like query against a relational dataset
	KindTriangles  = "triangles"  // triangle count on a graph dataset
	KindKStars     = "kstars"     // k-star count (K required)
	KindKTriangles = "ktriangles" // k-triangle count (K required)
	KindPattern    = "pattern"    // arbitrary connected pattern count
)

// Workload size ceilings. Subgraph enumeration is combinatorial in k and in
// the pattern size, so an unbounded request could pin a worker (and its ε
// reservation) indefinitely — a cheap denial of service on an endpoint that
// accepts untrusted JSON. The caps comfortably cover the paper's workloads
// (k ≤ 5, patterns on ≤ 5 nodes).
const (
	MaxK            = 10 // kstars/ktriangles
	MaxPatternNodes = 8
	MaxPatternEdges = 28 // complete graph on MaxPatternNodes nodes
)

// Request is one differentially private query. Exactly the fields relevant
// to Kind must be set; Epsilon ≤ 0 takes the server's default.
type Request struct {
	Dataset string `json:"dataset"`
	Kind    string `json:"kind"`

	Query string `json:"query,omitempty"` // sql: the query text

	K            int      `json:"k,omitempty"`            // kstars/ktriangles: the k
	PatternNodes int      `json:"patternNodes,omitempty"` // pattern: node count
	PatternEdges [][2]int `json:"patternEdges,omitempty"` // pattern: edges on 0..patternNodes-1

	Privacy string  `json:"privacy,omitempty"` // "node" (default) or "edge"; graph kinds only
	Epsilon float64 `json:"epsilon,omitempty"` // privacy budget for this release

	// parsed carries the SQL parse tree from cacheKey to the executor so
	// the text is lexed once per fresh query.
	parsed *query.Query
}

// Response is one differentially private answer. Only already-released
// values appear here — never the true answer or the sensitivity proxy Δ,
// which are not private.
type Response struct {
	Dataset string  `json:"dataset"`
	Kind    string  `json:"kind"`
	Value   float64 `json:"value"`   // the ε-DP answer
	Epsilon float64 `json:"epsilon"` // ε charged when the release was produced
	// Cached reports that this reply replayed a recorded release (or joined
	// an in-flight identical query) and therefore cost zero additional ε.
	Cached bool `json:"cached"`
	// RemainingBudget is the dataset's unreserved ε after this reply.
	RemainingBudget float64 `json:"remainingBudget"`
}

// normalize validates the request in place, lowercasing the enum-ish fields
// and substituting defaults. All failures are RequestErrors.
func (r *Request) normalize(cfg Config) error {
	r.Dataset = canonName(r.Dataset)
	r.Kind = strings.ToLower(strings.TrimSpace(r.Kind))
	r.Privacy = strings.ToLower(strings.TrimSpace(r.Privacy))
	if r.Dataset == "" {
		return badRequestf("dataset is required")
	}
	if r.Epsilon == 0 {
		r.Epsilon = cfg.DefaultEpsilon
	}
	// NaN compares false with everything, so "<= 0" alone would let a NaN
	// ε through validation and poison the ledger.
	if math.IsNaN(r.Epsilon) || math.IsInf(r.Epsilon, 0) || r.Epsilon <= 0 {
		return badRequestf("epsilon must be positive and finite, got %g", r.Epsilon)
	}
	if cfg.MaxEpsilon > 0 && r.Epsilon > cfg.MaxEpsilon {
		return badRequestf("epsilon %g exceeds the per-query ceiling %g", r.Epsilon, cfg.MaxEpsilon)
	}
	switch r.Privacy {
	case "", "node":
		r.Privacy = "node"
	case "edge":
	default:
		return badRequestf("privacy must be \"node\" or \"edge\", got %q", r.Privacy)
	}
	switch r.Kind {
	case KindSQL:
		if strings.TrimSpace(r.Query) == "" {
			return badRequestf("kind %q requires a query", r.Kind)
		}
		if r.Privacy == "edge" {
			return badRequestf("privacy applies to graph kinds only; kind %q always protects participants", r.Kind)
		}
	case KindTriangles:
	case KindKStars, KindKTriangles:
		if r.K < 1 || r.K > MaxK {
			return badRequestf("kind %q requires 1 ≤ k ≤ %d, got %d", r.Kind, MaxK, r.K)
		}
	case KindPattern:
		if r.PatternNodes < 1 || r.PatternNodes > MaxPatternNodes {
			return badRequestf("kind %q requires 1 ≤ patternNodes ≤ %d, got %d", r.Kind, MaxPatternNodes, r.PatternNodes)
		}
		if len(r.PatternEdges) > MaxPatternEdges {
			return badRequestf("at most %d pattern edges, got %d", MaxPatternEdges, len(r.PatternEdges))
		}
		for _, e := range r.PatternEdges {
			if e[0] < 0 || e[0] >= r.PatternNodes || e[1] < 0 || e[1] >= r.PatternNodes || e[0] == e[1] {
				return badRequestf("pattern edge [%d,%d] out of range for %d nodes", e[0], e[1], r.PatternNodes)
			}
		}
	case "":
		return badRequestf("kind is required (one of sql, triangles, kstars, ktriangles, pattern)")
	default:
		return badRequestf("unknown kind %q (one of sql, triangles, kstars, ktriangles, pattern)", r.Kind)
	}
	return nil
}

// privacy returns the subgraph privacy model (normalize must have run).
func (r *Request) privacy() subgraph.Privacy {
	if r.Privacy == "edge" {
		return subgraph.EdgePrivacy
	}
	return subgraph.NodePrivacy
}

// nodeLike reports whether the mechanism should use the node-privacy
// parameter defaults (µ = 1). Relational queries protect arbitrary
// participants, the stronger setting.
func (r *Request) nodeLike() bool {
	return r.Kind == KindSQL || r.privacy() == subgraph.NodePrivacy
}

// pattern builds the validated subgraph pattern for KindPattern, converting
// subgraph.NewPattern's panics (disconnected, isolated node) into
// RequestErrors.
func (r *Request) pattern() (p subgraph.Pattern, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = badRequestf("invalid pattern: %v", rec)
		}
	}()
	edges := make([]graph.Edge, len(r.PatternEdges))
	for i, e := range r.PatternEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		edges[i] = graph.Edge{U: u, V: v}
	}
	return subgraph.NewPattern(r.PatternNodes, edges), nil
}

// cacheKey derives the release-cache key: two requests share a key exactly
// when they would replay the same recorded release — same dataset snapshot
// (name and generation), same canonicalized query, same privacy model and
// budget. SQL text is canonicalized through the parser, so formatting and
// keyword-case differences still hit the cache.
//
// Durable and in-memory snapshots key in disjoint namespaces ("@v" store
// versions vs "#" per-boot generations): a flag-loaded dataset's gen 1 and
// a later upload's store version 1 are different data and must never share
// a recorded release.
func (r *Request) cacheKey(ds *Dataset) (string, error) {
	detail := ""
	switch r.Kind {
	case KindSQL:
		q, err := query.Parse(r.Query)
		if err != nil {
			return "", &RequestError{Reason: err.Error()}
		}
		r.parsed = q
		detail = q.Canonical()
	case KindKStars, KindKTriangles:
		detail = fmt.Sprintf("k=%d", r.K)
	case KindPattern:
		edges := make([]string, len(r.PatternEdges))
		for i, e := range r.PatternEdges {
			u, v := e[0], e[1]
			if u > v {
				u, v = v, u
			}
			edges[i] = fmt.Sprintf("%d-%d", u, v)
		}
		sort.Strings(edges)
		detail = fmt.Sprintf("n=%d;%s", r.PatternNodes, strings.Join(edges, ","))
	}
	genTag := "#"
	if ds.Durable {
		genTag = "@v"
	}
	return fmt.Sprintf("%s%s%d|%s|%s|eps=%.17g|%s", ds.Name, genTag, ds.Gen, r.Kind, r.Privacy, r.Epsilon, detail), nil
}
