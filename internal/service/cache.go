package service

import "recmech/internal/sfcache"

// ReleaseCache remembers noisy answers the service has released, keyed on
// (dataset generation, canonical query, privacy parameters, ε). Replaying a
// recorded release is privacy-free — the released value is already public,
// so repeating it reveals nothing new and costs zero ε — which turns the
// common "same dashboard query every minute" pattern from a budget drain
// into a constant.
//
// The cache also coalesces concurrent identical queries (singleflight): the
// first arrival computes, later arrivals wait for and share its release, so
// a thundering herd of the same query spends ε exactly once.
//
// Capacity is bounded: beyond the limit, the oldest recorded releases are
// evicted FIFO. Evicting a release is always safe — a repeat of that query
// simply spends fresh ε — and the bound keeps a long-running daemon from
// accumulating entries forever. Entries of stale dataset generations —
// unreachable the moment a dataset is re-uploaded, appended to, or deleted —
// are not left to age out: the admin paths purge them eagerly (see
// Service.purgeStale).
//
// The machinery (singleflight, FIFO eviction, failure-not-recorded,
// startup Preload) lives in internal/sfcache, shared with the plan cache.
type ReleaseCache = sfcache.Cache[Response]

// NewReleaseCache returns an empty cache evicting beyond maxEntries
// recorded releases (maxEntries < 1 means 1).
func NewReleaseCache(maxEntries int) *ReleaseCache {
	return sfcache.New[Response](maxEntries)
}
