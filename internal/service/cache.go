package service

import (
	"context"
	"sync"
)

// ReleaseCache remembers noisy answers the service has released, keyed on
// (dataset generation, canonical query, privacy parameters). Replaying a
// recorded release is privacy-free — the released value is already public,
// so repeating it reveals nothing new and costs zero ε — which turns the
// common "same dashboard query every minute" pattern from a budget drain
// into a constant.
//
// The cache also coalesces concurrent identical queries (singleflight): the
// first arrival computes, later arrivals wait for and share its release, so
// a thundering herd of the same query spends ε exactly once.
//
// Capacity is bounded: beyond maxEntries, the oldest recorded releases are
// evicted FIFO. Evicting a release is always safe — a repeat of that query
// simply spends fresh ε — and the bound keeps a long-running daemon from
// accumulating entries forever (including entries of stale dataset
// generations, which become unreachable when a dataset is re-registered).
type ReleaseCache struct {
	mu         sync.Mutex
	entries    map[string]*cacheEntry
	order      []string // completed entries, insertion order, for eviction
	maxEntries int
}

type cacheEntry struct {
	ready chan struct{} // closed once resp/err are set
	resp  Response
	err   error
}

// NewReleaseCache returns an empty cache evicting beyond maxEntries
// recorded releases (maxEntries < 1 means 1).
func NewReleaseCache(maxEntries int) *ReleaseCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &ReleaseCache{entries: make(map[string]*cacheEntry), maxEntries: maxEntries}
}

// Preload installs an already-recorded release, as replayed from a durable
// store at startup. A later Preload of the same key replaces the earlier
// one (the journal appends re-records after eviction, so last wins).
// Preloaded entries count toward the eviction bound like any other.
func (c *ReleaseCache) Preload(key string, resp Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &cacheEntry{ready: make(chan struct{}), resp: resp}
	close(e.ready)
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = e
	for len(c.order) > c.maxEntries {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// Len returns the number of entries (recorded and in-flight).
func (c *ReleaseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Do returns the recorded release for key, or runs compute to produce it.
// The second result reports whether the response was shared rather than
// freshly computed by this call (and therefore cost this caller zero ε).
//
// A failed compute (budget exhausted, execution error) is not recorded:
// the entry is removed so a later attempt — perhaps after a budget Grant —
// retries, but callers already waiting on the failed flight receive its
// error rather than each spending a fresh reservation on a doomed query.
func (c *ReleaseCache) Do(ctx context.Context, key string, compute func() (Response, error)) (Response, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.ready:
			if e.err != nil {
				return Response{}, false, e.err
			}
			return e.resp, true, nil
		case <-ctx.Done():
			return Response{}, false, ctx.Err()
		}
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.resp, e.err = compute()

	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		for len(c.order) > c.maxEntries {
			// Every key in order is a completed entry, so eviction never
			// cuts off waiters of an in-flight computation.
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e.resp, false, e.err
}
