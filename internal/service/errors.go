// Package service is the serving layer of the repository: a concurrent
// differentially private query service over the recursive mechanism. It
// combines a dataset registry (named sensitive graphs and relational
// catalogues), a privacy-budget accountant (a per-dataset ε ledger with
// atomic reserve/commit/refund semantics), a query executor (a bounded
// worker pool running the SQL-like front end and the built-in subgraph-count
// workloads through internal/mechanism), and a release cache that replays a
// previously released noisy answer instead of spending fresh budget —
// privacy-sound because republishing a recorded ε-DP release costs zero ε.
//
// cmd/recmechd exposes the service over HTTP/JSON; NewHandler builds the
// http.Handler it serves.
package service

import (
	"errors"
	"fmt"
)

// Sentinel errors for errors.Is checks across the package boundary. The
// concrete errors carry more context (see BudgetError, DatasetError,
// RequestError) but always match the corresponding sentinel.
var (
	// ErrBudgetExhausted rejects a query whose ε cannot be reserved from
	// the dataset's remaining privacy budget. No budget is spent by a
	// rejected query.
	ErrBudgetExhausted = errors.New("service: privacy budget exhausted")
	// ErrUnknownDataset rejects a query against an unregistered dataset.
	ErrUnknownDataset = errors.New("service: unknown dataset")
	// ErrBadRequest rejects a malformed or inapplicable request (unknown
	// kind, parse failure, wrong dataset kind, invalid ε, …).
	ErrBadRequest = errors.New("service: bad request")
)

// BudgetError is the typed rejection returned when a reservation would
// overdraw a dataset's ε ledger. errors.Is(err, ErrBudgetExhausted) is true.
type BudgetError struct {
	Dataset   string  // ledger the reservation was attempted against
	Requested float64 // ε the query asked for
	Remaining float64 // ε still unreserved at rejection time
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("service: privacy budget exhausted for dataset %q: requested ε=%g, remaining ε=%g",
		e.Dataset, e.Requested, e.Remaining)
}

// Is makes errors.Is(err, ErrBudgetExhausted) succeed.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExhausted }

// DatasetError identifies a missing dataset. errors.Is(err,
// ErrUnknownDataset) is true.
type DatasetError struct {
	Name string
}

func (e *DatasetError) Error() string {
	return fmt.Sprintf("service: unknown dataset %q", e.Name)
}

// Is makes errors.Is(err, ErrUnknownDataset) succeed.
func (e *DatasetError) Is(target error) bool { return target == ErrUnknownDataset }

// RequestError reports an invalid request. errors.Is(err, ErrBadRequest) is
// true.
type RequestError struct {
	Reason string
}

func (e *RequestError) Error() string { return "service: bad request: " + e.Reason }

// Is makes errors.Is(err, ErrBadRequest) succeed.
func (e *RequestError) Is(target error) bool { return target == ErrBadRequest }

func badRequestf(format string, args ...any) error {
	return &RequestError{Reason: fmt.Sprintf(format, args...)}
}
