// Package service is the serving layer of the repository: a concurrent
// differentially private query service over the recursive mechanism. It
// combines a dataset registry (named sensitive graphs and relational
// catalogues), a privacy-budget accountant (a per-dataset ε ledger with
// atomic reserve/commit/refund semantics), a query executor (a bounded
// worker pool running the SQL-like front end and the built-in subgraph-count
// workloads through internal/mechanism), and a release cache that replays a
// previously released noisy answer instead of spending fresh budget —
// privacy-sound because republishing a recorded ε-DP release costs zero ε.
//
// cmd/recmechd exposes the service over HTTP/JSON; NewHandler builds the
// http.Handler it serves.
package service

import (
	"errors"
	"fmt"
)

// Sentinel errors for errors.Is checks across the package boundary. The
// concrete errors carry more context (see BudgetError, DatasetError,
// RequestError) but always match the corresponding sentinel.
var (
	// ErrBudgetExhausted rejects a query whose ε cannot be reserved from
	// the dataset's remaining privacy budget. No budget is spent by a
	// rejected query.
	ErrBudgetExhausted = errors.New("service: privacy budget exhausted")
	// ErrUnknownDataset rejects a query against an unregistered dataset.
	ErrUnknownDataset = errors.New("service: unknown dataset")
	// ErrBadRequest rejects a malformed or inapplicable request (unknown
	// kind, parse failure, wrong dataset kind, invalid ε, …).
	ErrBadRequest = errors.New("service: bad request")
	// ErrUnknownJob rejects a lookup or cancellation of a job id that is
	// not retained (never existed, or evicted past the retention bound).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrJobFinished rejects cancellation of a job already in a terminal
	// state — there is nothing left to cancel or refund.
	ErrJobFinished = errors.New("service: job already finished")
	// ErrRequestTooLarge rejects a request body over the configured size
	// limit before buffering it.
	ErrRequestTooLarge = errors.New("service: request body too large")
	// ErrJobsBusy rejects a job submission while the maximum number of
	// jobs are already active; retry once some finish.
	ErrJobsBusy = errors.New("service: too many active jobs")
	// ErrUnknownTrace rejects a lookup of a trace ID that is not retained
	// (never recorded, or evicted from the bounded ring of recent traces).
	ErrUnknownTrace = errors.New("service: unknown trace")
	// ErrInvalidTail rejects an accuracy request whose tail parameter c is
	// not positive and finite — the Theorem 1 bound is undefined there
	// (the mechanism layer panics on c ≤ 0; the service validates at the
	// boundary so a request parameter can never reach that panic).
	ErrInvalidTail = errors.New("service: invalid tail parameter")
	// ErrInvalidMode rejects a compile-mode selection that is not one of
	// auto/exact/sampled, a sample budget out of range, or a sampled mode
	// aimed at a workload that only compiles exactly (SQL).
	ErrInvalidMode = errors.New("service: invalid compile mode")
	// ErrAccuracyDisabled rejects a tenant-facing accuracy request
	// (/v2/advise, the prepare accuracy block) on a server that has not
	// opted in: the Theorem 1 bound is computed from the sensitive data,
	// so exposing it per query leaks outside the DP guarantee. Start the
	// daemon with -expose-accuracy to enable; see DESIGN.md.
	ErrAccuracyDisabled = errors.New("service: accuracy exposure disabled")
)

// BudgetError is the typed rejection returned when a reservation would
// overdraw a dataset's ε ledger. errors.Is(err, ErrBudgetExhausted) is true.
type BudgetError struct {
	Dataset   string  // ledger the reservation was attempted against
	Requested float64 // ε the query asked for
	Remaining float64 // ε still unreserved at rejection time
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("service: privacy budget exhausted for dataset %q: requested ε=%g, remaining ε=%g",
		e.Dataset, e.Requested, e.Remaining)
}

// Is makes errors.Is(err, ErrBudgetExhausted) succeed.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExhausted }

// DatasetError identifies a missing dataset. errors.Is(err,
// ErrUnknownDataset) is true.
type DatasetError struct {
	Name string
}

func (e *DatasetError) Error() string {
	return fmt.Sprintf("service: unknown dataset %q", e.Name)
}

// Is makes errors.Is(err, ErrUnknownDataset) succeed.
func (e *DatasetError) Is(target error) bool { return target == ErrUnknownDataset }

// RequestError reports an invalid request. errors.Is(err, ErrBadRequest) is
// true.
type RequestError struct {
	Reason string
}

func (e *RequestError) Error() string { return "service: bad request: " + e.Reason }

// Is makes errors.Is(err, ErrBadRequest) succeed.
func (e *RequestError) Is(target error) bool { return target == ErrBadRequest }

func badRequestf(format string, args ...any) error {
	return &RequestError{Reason: fmt.Sprintf(format, args...)}
}

// JobError identifies a missing job. errors.Is(err, ErrUnknownJob) is true.
type JobError struct {
	ID string
}

func (e *JobError) Error() string {
	return fmt.Sprintf("service: unknown job %q", e.ID)
}

// Is makes errors.Is(err, ErrUnknownJob) succeed.
func (e *JobError) Is(target error) bool { return target == ErrUnknownJob }

// JobFinishedError rejects cancellation of a terminal job. errors.Is(err,
// ErrJobFinished) is true.
type JobFinishedError struct {
	ID    string
	State string
}

func (e *JobFinishedError) Error() string {
	return fmt.Sprintf("service: job %q already finished (%s)", e.ID, e.State)
}

// Is makes errors.Is(err, ErrJobFinished) succeed.
func (e *JobFinishedError) Is(target error) bool { return target == ErrJobFinished }

// JobsBusyError rejects a submission while the job table is saturated with
// active jobs. errors.Is(err, ErrJobsBusy) is true.
type JobsBusyError struct {
	Active int // jobs currently queued or running
	Limit  int // the configured ceiling (Config.MaxJobs)
}

func (e *JobsBusyError) Error() string {
	return fmt.Sprintf("service: %d jobs active (limit %d); retry when some finish", e.Active, e.Limit)
}

// Is makes errors.Is(err, ErrJobsBusy) succeed.
func (e *JobsBusyError) Is(target error) bool { return target == ErrJobsBusy }

// TraceError identifies a missing trace. errors.Is(err, ErrUnknownTrace) is
// true.
type TraceError struct {
	ID string
}

func (e *TraceError) Error() string {
	return fmt.Sprintf("service: unknown trace %q", e.ID)
}

// Is makes errors.Is(err, ErrUnknownTrace) succeed.
func (e *TraceError) Is(target error) bool { return target == ErrUnknownTrace }

// TailError rejects an out-of-range tail parameter. It matches both
// ErrInvalidTail (for the typed 400 code "invalid_tail") and ErrBadRequest
// (it is a malformed request like any other).
type TailError struct {
	Tail float64
}

func (e *TailError) Error() string {
	return fmt.Sprintf("service: tail parameter must be positive and finite, got %g", e.Tail)
}

// Is makes errors.Is succeed for both ErrInvalidTail and ErrBadRequest.
func (e *TailError) Is(target error) bool {
	return target == ErrInvalidTail || target == ErrBadRequest
}

// ModeError rejects an invalid compile-mode selection. Like TailError it
// matches both its specific sentinel (ErrInvalidMode, for the typed 400
// code "invalid_mode") and ErrBadRequest.
type ModeError struct {
	Reason string
}

func (e *ModeError) Error() string { return "service: invalid compile mode: " + e.Reason }

// Is makes errors.Is succeed for both ErrInvalidMode and ErrBadRequest.
func (e *ModeError) Is(target error) bool {
	return target == ErrInvalidMode || target == ErrBadRequest
}

func modeErrorf(format string, args ...any) error {
	return &ModeError{Reason: fmt.Sprintf(format, args...)}
}

// AccuracyDisabledError rejects tenant-facing accuracy requests on a server
// without the opt-in. errors.Is(err, ErrAccuracyDisabled) is true.
type AccuracyDisabledError struct{}

func (e *AccuracyDisabledError) Error() string {
	return "service: accuracy reporting is not enabled on this server (start recmechd with -expose-accuracy; the bound is data-dependent — see DESIGN.md)"
}

// Is makes errors.Is(err, ErrAccuracyDisabled) succeed.
func (e *AccuracyDisabledError) Is(target error) bool { return target == ErrAccuracyDisabled }

// TooLargeError rejects an oversized request body. errors.Is(err,
// ErrRequestTooLarge) is true.
type TooLargeError struct {
	Limit int64 // bytes accepted
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("service: request body exceeds the %d-byte limit", e.Limit)
}

// Is makes errors.Is(err, ErrRequestTooLarge) succeed.
func (e *TooLargeError) Is(target error) bool { return target == ErrRequestTooLarge }
