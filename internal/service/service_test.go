package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"recmech"
)

const visitsTable = `
# annotated visits table: four participants
x y
a b @ pa & pb
b c @ pb & pc
c d @ pc & pd
a c @ pa & pc
`

// newTestServer builds a service with one graph dataset ("g") and one
// relational dataset ("med"), both with the given total budget, behind an
// in-process HTTP server.
func newTestServer(t testing.TB, budget float64) (*httptest.Server, *recmech.Service) {
	t.Helper()
	svc := recmech.NewService(recmech.ServiceConfig{
		DatasetBudget:  budget,
		DefaultEpsilon: 0.5,
		Workers:        4,
		Seed:           7,
	})

	g := recmech.NewGraph(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {5, 6}, {6, 7}} {
		g.AddEdge(e[0], e[1])
	}
	svc.AddGraph("g", g)

	u := recmech.NewUniverse()
	rel, err := recmech.LoadTable(strings.NewReader(visitsTable), u)
	if err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	db := recmech.NewQueryDatabase()
	db.Register("visits", rel)
	svc.AddRelational("med", u, db)

	ts := httptest.NewServer(recmech.NewServiceHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postQuery(t testing.TB, ts *httptest.Server, req recmech.ServiceRequest) (int, recmech.ServiceResponse, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	httpResp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if httpResp.StatusCode == http.StatusOK {
		var resp recmech.ServiceResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
		return httpResp.StatusCode, resp, nil
	}
	var errBody map[string]any
	if err := json.Unmarshal(raw, &errBody); err != nil {
		t.Fatalf("unmarshal error body %q: %v", raw, err)
	}
	return httpResp.StatusCode, recmech.ServiceResponse{}, errBody
}

func errCode(t testing.TB, errBody map[string]any) string {
	t.Helper()
	inner, ok := errBody["error"].(map[string]any)
	if !ok {
		t.Fatalf("error body without error object: %v", errBody)
	}
	code, _ := inner["code"].(string)
	return code
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHTTPEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, 2.0)

	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: code %d body %v", code, health)
	}

	var dsBody struct {
		Datasets []recmech.DatasetInfo `json:"datasets"`
	}
	if code := getJSON(t, ts.URL+"/v1/datasets", &dsBody); code != 200 {
		t.Fatalf("datasets: code %d", code)
	}
	if len(dsBody.Datasets) != 2 || dsBody.Datasets[0].Name != "g" || dsBody.Datasets[1].Name != "med" {
		t.Fatalf("datasets: %+v", dsBody.Datasets)
	}
	if dsBody.Datasets[0].Kind != "graph" || dsBody.Datasets[0].Nodes != 8 {
		t.Fatalf("graph dataset info: %+v", dsBody.Datasets[0])
	}
	if dsBody.Datasets[1].Kind != "relational" || len(dsBody.Datasets[1].Tables) != 1 {
		t.Fatalf("relational dataset info: %+v", dsBody.Datasets[1])
	}

	// First release spends ε = 0.5 of the graph budget.
	code, resp, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.5})
	if code != 200 {
		t.Fatalf("triangles: code %d", code)
	}
	if resp.Cached || math.Abs(resp.RemainingBudget-1.5) > 1e-9 || resp.Epsilon != 0.5 {
		t.Fatalf("first release: %+v", resp)
	}
	if math.IsNaN(resp.Value) || math.IsInf(resp.Value, 0) {
		t.Fatalf("released value not finite: %v", resp.Value)
	}
	triValue := resp.Value

	// The identical query replays the recorded release: same value, zero ε.
	code, again, _ := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.5})
	if code != 200 || !again.Cached {
		t.Fatalf("replay not cached: code %d %+v", code, again)
	}
	if again.Value != resp.Value {
		t.Fatalf("replay changed the answer: %v vs %v", again.Value, resp.Value)
	}
	if math.Abs(again.RemainingBudget-1.5) > 1e-9 {
		t.Fatalf("replay spent budget: %+v", again)
	}

	var budget recmech.BudgetStatus
	if code := getJSON(t, ts.URL+"/v1/budget/g", &budget); code != 200 {
		t.Fatalf("budget: code %d", code)
	}
	if math.Abs(budget.Spent-0.5) > 1e-9 || budget.Reserved != 0 {
		t.Fatalf("budget after replay: %+v", budget)
	}

	// SQL against the relational dataset; a formatting variant of the same
	// query must hit the cache (canonicalization).
	sql := recmech.ServiceRequest{Dataset: "med", Kind: recmech.KindSQL, Query: "SELECT x FROM visits WHERE y != 'zz'", Epsilon: 0.5}
	code, sqlResp, _ := postQuery(t, ts, sql)
	if code != 200 || sqlResp.Cached {
		t.Fatalf("sql: code %d %+v", code, sqlResp)
	}
	variant := sql
	variant.Query = "select   X  from VISITS where Y <> \"zz\""
	code, varResp, _ := postQuery(t, ts, variant)
	if code != 200 || !varResp.Cached || varResp.Value != sqlResp.Value {
		t.Fatalf("canonicalized variant missed the cache: code %d %+v vs %+v", code, varResp, sqlResp)
	}

	// Drain the graph budget (1.5 left), then watch a fresh query get the
	// typed rejection without spending anything.
	code, resp, _ = postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindKStars, K: 2, Epsilon: 1.5})
	if code != 200 || math.Abs(resp.RemainingBudget) > 1e-9 {
		t.Fatalf("draining query: code %d %+v", code, resp)
	}
	code, _, errBody := postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Privacy: "edge", Epsilon: 0.5})
	if code != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget: code %d body %v", code, errBody)
	}
	if got := errCode(t, errBody); got != "budget_exhausted" {
		t.Fatalf("exhausted budget: code %q", got)
	}
	if code := getJSON(t, ts.URL+"/v1/budget/g", &budget); code != 200 {
		t.Fatalf("budget: code %d", code)
	}
	if math.Abs(budget.Spent-2.0) > 1e-9 || budget.Reserved != 0 {
		t.Fatalf("rejected query moved the ledger: %+v", budget)
	}

	// A recorded release still replays after exhaustion — zero ε needed.
	code, again, _ = postQuery(t, ts, recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.5})
	if code != 200 || !again.Cached || again.Value != triValue {
		t.Fatalf("replay after exhaustion: code %d %+v (want value %v)", code, again, triValue)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, 2.0)

	cases := []struct {
		name     string
		req      recmech.ServiceRequest
		wantCode int
		wantErr  string
	}{
		{"unknown dataset", recmech.ServiceRequest{Dataset: "nope", Kind: recmech.KindTriangles}, 404, "unknown_dataset"},
		{"unknown kind", recmech.ServiceRequest{Dataset: "g", Kind: "median"}, 400, "bad_request"},
		{"missing kind", recmech.ServiceRequest{Dataset: "g"}, 400, "bad_request"},
		{"sql against graph", recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindSQL, Query: "SELECT * FROM t"}, 400, "bad_request"},
		{"triangles against relational", recmech.ServiceRequest{Dataset: "med", Kind: recmech.KindTriangles}, 400, "bad_request"},
		{"sql parse error", recmech.ServiceRequest{Dataset: "med", Kind: recmech.KindSQL, Query: "SELECT FROM"}, 400, "bad_request"},
		{"sql unknown table", recmech.ServiceRequest{Dataset: "med", Kind: recmech.KindSQL, Query: "SELECT * FROM ghosts"}, 400, "bad_request"},
		{"kstars without k", recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindKStars}, 400, "bad_request"},
		{"kstars k over cap", recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindKStars, K: 100}, 400, "bad_request"},
		{"pattern over node cap", recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindPattern, PatternNodes: 50}, 400, "bad_request"},
		{"edge privacy on sql", recmech.ServiceRequest{Dataset: "med", Kind: recmech.KindSQL, Query: "SELECT * FROM visits", Privacy: "edge"}, 400, "bad_request"},
		{"bad privacy", recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Privacy: "both"}, 400, "bad_request"},
		{"bad pattern", recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindPattern, PatternNodes: 3, PatternEdges: [][2]int{{0, 1}}}, 400, "bad_request"},
		{"negative epsilon", recmech.ServiceRequest{Dataset: "g", Kind: recmech.KindTriangles, Epsilon: -1}, 400, "bad_request"},
	}
	for _, tc := range cases {
		code, _, errBody := postQuery(t, ts, tc.req)
		if code != tc.wantCode {
			t.Errorf("%s: code %d, want %d (%v)", tc.name, code, tc.wantCode, errBody)
			continue
		}
		if got := errCode(t, errBody); got != tc.wantErr {
			t.Errorf("%s: error code %q, want %q", tc.name, got, tc.wantErr)
		}
	}

	// Failed queries must not consume budget.
	var budget recmech.BudgetStatus
	getJSON(t, ts.URL+"/v1/budget/g", &budget)
	if budget.Spent != 0 || budget.Reserved != 0 {
		t.Fatalf("error paths spent budget: %+v", budget)
	}

	// Malformed JSON and budget for an unknown dataset.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: code %d", resp.StatusCode)
	}
	var errBody map[string]any
	if code := getJSON(t, ts.URL+"/v1/budget/nope", &errBody); code != 404 {
		t.Fatalf("budget of unknown dataset: code %d", code)
	}
}

// TestConcurrentDistinctQueriesComposeBudget fires more concurrent distinct
// queries than the budget can fund and checks that admission is exact:
// every accepted query's ε is committed, every rejection is the typed
// budget error, and the ledger balances to exactly the budget.
func TestConcurrentDistinctQueriesComposeBudget(t *testing.T) {
	ts, svc := newTestServer(t, 2.0)
	const (
		attempts = 16
		eps      = 0.25 // capacity: 8 of 16
	)
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := recmech.ServiceRequest{
				Dataset: "med",
				Kind:    recmech.KindSQL,
				Query:   fmt.Sprintf("SELECT x, y FROM visits WHERE x != 'u%d'", i),
				Epsilon: eps,
			}
			code, _, errBody := postQuery(t, ts, req)
			switch code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if got := errCode(t, errBody); got != "budget_exhausted" {
					t.Errorf("rejection code %q", got)
				}
				rejected.Add(1)
			default:
				t.Errorf("query %d: unexpected status %d (%v)", i, code, errBody)
			}
		}(i)
	}
	wg.Wait()
	if ok.Load() != 8 || rejected.Load() != 8 {
		t.Fatalf("admission miscounted: %d ok, %d rejected (want 8/8)", ok.Load(), rejected.Load())
	}
	st, err := svc.Budget("med")
	if err != nil {
		t.Fatalf("Budget: %v", err)
	}
	if math.Abs(st.Spent-2.0) > 1e-9 || st.Reserved != 0 || st.Remaining > 1e-9 {
		t.Fatalf("ledger unbalanced after storm: %+v", st)
	}
}

// TestConcurrentIdenticalQueriesCoalesce checks the singleflight property:
// a thundering herd of one query spends ε exactly once and everyone gets
// the same released value.
func TestConcurrentIdenticalQueriesCoalesce(t *testing.T) {
	ts, svc := newTestServer(t, 2.0)
	const herd = 12
	var fresh atomic.Int64
	values := make([]float64, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, resp, errBody := postQuery(t, ts, recmech.ServiceRequest{
				Dataset: "g", Kind: recmech.KindTriangles, Epsilon: 0.5,
			})
			if code != http.StatusOK {
				t.Errorf("query %d: status %d (%v)", i, code, errBody)
				return
			}
			if !resp.Cached {
				fresh.Add(1)
			}
			values[i] = resp.Value
		}(i)
	}
	wg.Wait()
	if fresh.Load() != 1 {
		t.Fatalf("%d fresh releases for one identical query, want 1", fresh.Load())
	}
	for i := 1; i < herd; i++ {
		if values[i] != values[0] {
			t.Fatalf("herd saw different values: %v vs %v", values[i], values[0])
		}
	}
	st, err := svc.Budget("g")
	if err != nil {
		t.Fatalf("Budget: %v", err)
	}
	if math.Abs(st.Spent-0.5) > 1e-9 || st.Reserved != 0 {
		t.Fatalf("herd spent more than one ε: %+v", st)
	}
}
