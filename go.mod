module recmech

go 1.24
