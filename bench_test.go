// Benchmarks: one target per table/figure of the paper's evaluation plus the
// ablations of DESIGN.md. Each benchmark iteration runs its experiment in
// benchmark mode (the smallest point of every sweep, 3 noise draws per
// point), so a full pass with -benchtime=1x regenerates one representative
// row of every figure. The complete tables are produced by
//
//	go run ./cmd/repro -fig all
//
// which uses the quick-scale sweeps (minutes), or -paper for the published
// workload sizes (hours to days).
package recmech

import (
	"testing"

	"recmech/internal/exper"
	"recmech/internal/subgraph"
)

func benchConfig() exper.Config {
	return exper.Config{Trials: 3, Seed: 1, Bench: true}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exper.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Comparison regenerates the Fig. 1 comparison table.
func BenchmarkFig1Comparison(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig4aNodes regenerates Fig. 4(a): error vs |V|.
func BenchmarkFig4aNodes(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4bDegree regenerates Fig. 4(b): error vs average degree.
func BenchmarkFig4bDegree(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkFig4cEpsilon regenerates Fig. 4(c): error vs ε.
func BenchmarkFig4cEpsilon(b *testing.B) { runExperiment(b, "fig4c") }

// BenchmarkFig5RunningTime regenerates Fig. 5: running time vs |V|.
func BenchmarkFig5RunningTime(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6RealGraphs regenerates Fig. 6: real-graph stand-ins.
func BenchmarkFig6RealGraphs(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7RealAccuracy regenerates Fig. 7: accuracy on the stand-ins.
func BenchmarkFig7RealAccuracy(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8ClauseCount regenerates Fig. 8: K-relations vs clause count.
func BenchmarkFig8ClauseCount(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9RelationSize regenerates Fig. 9: K-relations vs |supp(R)|.
func BenchmarkFig9RelationSize(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkAblationDNF measures raw vs DNF-normalized annotations.
func BenchmarkAblationDNF(b *testing.B) { runExperiment(b, "abl-dnf") }

// BenchmarkAblationBeta measures the β = ε/k sweep.
func BenchmarkAblationBeta(b *testing.B) { runExperiment(b, "abl-beta") }

// BenchmarkAblationSplit measures the ε₁:ε₂ split sweep.
func BenchmarkAblationSplit(b *testing.B) { runExperiment(b, "abl-split") }

// BenchmarkAblationLP measures the two LP solvers on the mechanism's H LPs.
func BenchmarkAblationLP(b *testing.B) { runExperiment(b, "abl-lp") }

// ---- Micro-benchmarks of the core pipeline ----

// BenchmarkTrianglePrepare measures Δ preparation for node-private triangle
// counting on a 40-node graph (the per-graph LP cost).
func BenchmarkTrianglePrepare(b *testing.B) {
	g := RandomGraph(NewRand(1), 40, 6)
	for i := 0; i < b.N; i++ {
		if _, err := TriangleCounter(g, Options{Epsilon: 0.5, Privacy: NodePrivacy}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTriangleRelease measures one release on a prepared counter (the
// marginal per-answer cost).
func BenchmarkTriangleRelease(b *testing.B) {
	g := RandomGraph(NewRand(1), 40, 6)
	c, err := TriangleCounter(g, Options{Epsilon: 0.5, Privacy: NodePrivacy})
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Release(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTriangleEnumeration measures the substrate: enumerating all
// triangles of a 200-node graph.
func BenchmarkTriangleEnumeration(b *testing.B) {
	g := RandomGraph(NewRand(1), 200, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkInt = subgraph.CountTriangles(g)
	}
}

var benchSinkInt int
