// Commonfriends reproduces the query of the paper's Fig. 2(b) — "how many
// pairs of friends have a common friend?" — end to end through the positive
// relational algebra on annotated relations: the K-relation is built by
// joins and a projection, the annotations fall out of the provenance
// semiring, and the recursive mechanism releases the count under node
// differential privacy.
//
// Run with: go run ./examples/commonfriends
package main

import (
	"fmt"
	"log"

	"recmech"
)

func main() {
	u := recmech.NewUniverse()

	// The social network of Fig. 2: a-b, a-c, b-c, b-d, c-d, c-e, d-e.
	friendships := [][2]string{
		{"a", "b"}, {"a", "c"}, {"b", "c"}, {"b", "d"},
		{"c", "d"}, {"c", "e"}, {"d", "e"},
	}

	// Base table E(x, y): one tuple per direction, annotated x ∧ y so that a
	// person withdrawing removes all their edges — node privacy.
	e := recmech.NewRelation("x", "y")
	for _, f := range friendships {
		ann := recmech.AndExprs(recmech.VarOf(u, f[0]), recmech.VarOf(u, f[1]))
		e.Add(recmech.Tuple{f[0], f[1]}, ann)
		e.Add(recmech.Tuple{f[1], f[0]}, ann)
	}

	// π_{x,y}( E(x,y) ⋈ E(x,w) ⋈ E(y,w) ) with x < y and w ∉ {x,y}:
	// pairs of friends that share at least one common friend w.
	exw := recmech.RenameAttrs(e, map[string]string{"y": "w"})
	eyw := recmech.RenameAttrs(e, map[string]string{"x": "y", "y": "w"})
	joined := recmech.NaturalJoin(recmech.NaturalJoin(e, exw), eyw)
	filtered := recmech.SelectWhere(joined, func(get func(string) string) bool {
		x, y, w := get("x"), get("y"), get("w")
		return x < y && w != x && w != y
	})
	pairs := recmech.Project(filtered, "x", "y")

	fmt.Println("raw pipeline provenance (variables repeat across join factors):")
	pairs.Each(func(t recmech.Tuple, ann *recmech.Expr) {
		fmt.Printf("  %-8s %s\n", t.String(), u.Format(ann))
	})

	// Normalize to canonical DNF: this deduplicates the repeated variables
	// and yields exactly the paper's Fig. 2(b) table — e.g. pair (b,c) gets
	// (a∧b∧c) ∨ (b∧c∧d), φ-equivalent to b∧c∧(a∨d): the pair survives as
	// long as either common friend remains.
	s, err := recmech.NormalizeDNF(recmech.NewSensitive(u, pairs), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnormalized (Fig. 2(b)) annotations:")
	s.Rel.Each(func(t recmech.Tuple, ann *recmech.Expr) {
		fmt.Printf("  %-8s %s\n", t.String(), u.Format(ann))
	})
	res, err := recmech.QueryRelation(s, recmech.Count,
		recmech.Options{Epsilon: 1.0, Privacy: recmech.NodePrivacy}, recmech.NewRand(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue count: %.0f\n", res.TrueAnswer)
	fmt.Printf("private count (ε = 1, node privacy): %.2f\n", res.Value)
}
