// Quickstart: release a node-differentially-private triangle count of a
// small social network — the headline capability of the paper (the first
// node-DP subgraph counting mechanism).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"recmech"
)

func main() {
	// A 30-person social network with clustered friendships.
	rng := recmech.NewRand(42)
	g := recmech.RandomClusteredGraph(rng, 30, 60, 0.6)

	// Prepare node-private triangle counting with ε = 1.
	counter, err := recmech.TriangleCounter(g, recmech.Options{
		Epsilon: 1.0,
		Privacy: recmech.NodePrivacy,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := counter.Result(rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d people, %d friendships\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("participants protected: %d (every person, with all their edges)\n",
		res.Participants)
	fmt.Printf("true triangle count (never leaves this machine): %.0f\n", res.TrueAnswer)
	fmt.Printf("differentially private triangle count:           %.2f\n", res.Value)
	fmt.Printf("sensitivity proxy Δ: %.3f\n", res.Delta)

	// Repeated releases each cost the full ε again, but reuse the LP work.
	fmt.Println("\nthree more releases (each spends another ε = 1):")
	for i := 0; i < 3; i++ {
		v, err := counter.Release(rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  release %d: %.2f\n", i+1, v)
	}
}
