// Relational demonstrates the paper's general setting: a linear statistic
// over the output of a positive relational-algebra query with unrestricted
// joins, on a multi-table database where each participant contributes tuples
// to several tables and each output tuple may be contributed collectively.
//
// Scenario: two clinics submit visit records (a union), visits join with a
// prescriptions table on the patient, and the analyst wants the total number
// of dispensed doses — a weighted linear query — without revealing whether
// any one patient participated at all.
//
// Run with: go run ./examples/relational
package main

import (
	"fmt"
	"log"
	"strconv"

	"recmech"
)

func main() {
	u := recmech.NewUniverse()
	patient := func(name string) *recmech.Expr { return recmech.VarOf(u, name) }

	// Clinic A's visit table, annotated with the contributing patient.
	clinicA := recmech.NewRelation("patient", "ailment")
	clinicA.Add(recmech.Tuple{"ana", "flu"}, patient("ana"))
	clinicA.Add(recmech.Tuple{"bo", "flu"}, patient("bo"))
	clinicA.Add(recmech.Tuple{"cy", "cough"}, patient("cy"))

	// Clinic B's visit table. Patient "bo" visits both clinics: after the
	// union, bo's flu tuple is annotated bo ∨ bo — present if bo opts in.
	clinicB := recmech.NewRelation("patient", "ailment")
	clinicB.Add(recmech.Tuple{"bo", "flu"}, patient("bo"))
	clinicB.Add(recmech.Tuple{"dee", "cough"}, patient("dee"))

	visits := recmech.Union(clinicA, clinicB)

	// Prescription table: ailment → doses. These rows are reference data
	// (always present), so they are annotated True via an empty conjunction.
	rx := recmech.NewRelation("ailment", "doses")
	rx.Add(recmech.Tuple{"flu", "3"}, recmech.AndExprs())
	rx.Add(recmech.Tuple{"cough", "5"}, recmech.AndExprs())

	// Unrestricted join: one patient's withdrawal can remove any number of
	// output tuples — the case no prior mechanism supports.
	dispensed := recmech.NaturalJoin(visits, rx)

	fmt.Println("join output with provenance:")
	dispensed.Each(func(t recmech.Tuple, ann *recmech.Expr) {
		fmt.Printf("  %-22s %s\n", t.String(), u.Format(ann))
	})

	// Linear query: sum the doses column.
	doses := func(t recmech.Tuple) float64 {
		v, err := strconv.Atoi(t[2])
		if err != nil {
			panic(err)
		}
		return float64(v)
	}

	s := recmech.NewSensitive(u, dispensed)
	res, err := recmech.QueryRelation(s, doses,
		recmech.Options{Epsilon: 1.0}, recmech.NewRand(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue total doses: %.0f\n", res.TrueAnswer)
	fmt.Printf("private total (ε = 1): %.2f\n", res.Value)
	fmt.Printf("participants protected: %d patients\n", res.Participants)
}
