// Sweep plots (textually) the privacy/utility trade-off of the recursive
// mechanism: median relative error of node- and edge-private triangle
// counting across a range of ε on the same graph, mirroring the paper's
// Fig. 4(c).
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"recmech"
)

const trials = 21

func main() {
	rng := recmech.NewRand(3)
	g := recmech.RandomGraph(rng, 40, 6)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("%-6s  %-22s  %-22s\n", "ε", "node privacy", "edge privacy")

	for _, eps := range []float64{0.1, 0.2, 0.3, 0.5, 1.0, 2.0} {
		node := medianRelErr(g, recmech.NodePrivacy, eps)
		edge := medianRelErr(g, recmech.EdgePrivacy, eps)
		fmt.Printf("%-6.1f  %-22s  %-22s\n", eps, bar(node), bar(edge))
	}
	fmt.Println("\n(each bar: median relative error over", trials, "releases; shorter is better)")
}

func medianRelErr(g *recmech.Graph, priv recmech.Privacy, eps float64) float64 {
	counter, err := recmech.TriangleCounter(g, recmech.Options{Epsilon: eps, Privacy: priv})
	if err != nil {
		log.Fatal(err)
	}
	rng := recmech.NewRand(int64(eps*1000) + int64(priv))
	truth := counter.TrueAnswer()
	errs := make([]float64, trials)
	for i := range errs {
		v, err := counter.Release(rng)
		if err != nil {
			log.Fatal(err)
		}
		errs[i] = math.Abs(v-truth) / truth
	}
	sort.Float64s(errs)
	return errs[trials/2]
}

// bar renders a log-scaled error bar with the numeric value.
func bar(relErr float64) string {
	width := int(math.Max(0, math.Min(14, 7+2*math.Log10(relErr+1e-9))))
	return fmt.Sprintf("%-14s %.3f", strings.Repeat("█", width), relErr)
}
