// Monotone demonstrates the general recursive mechanism of §4.2, which
// answers ANY monotonic query on a sensitive database — not only linear
// statistics of K-relations. The query here is a coverage function: each
// participant has visited a set of places, and the analyst wants the number
// of distinct places visited by anyone. A participant's withdrawal can
// shrink the answer by up to their whole itinerary, and the function is not
// linear in the participants — outside every prior mechanism's reach, but
// squarely inside Definition 8.
//
// Run with: go run ./examples/monotone
package main

import (
	"fmt"
	"log"
	"math/bits"

	"recmech"
)

// coverageDB implements recmech.MonotonicDatabase over fixed itineraries.
type coverageDB struct {
	itineraries []uint64 // bitmask of places per participant
}

func (d coverageDB) NumParticipants() int { return len(d.itineraries) }

func (d coverageDB) Query(subset uint32) float64 {
	var union uint64
	for p, places := range d.itineraries {
		if subset&(1<<uint(p)) != 0 {
			union |= places
		}
	}
	return float64(bits.OnesCount64(union))
}

func main() {
	places := func(ids ...uint) uint64 {
		var m uint64
		for _, i := range ids {
			m |= 1 << i
		}
		return m
	}
	db := coverageDB{itineraries: []uint64{
		places(0, 1, 2),    // a frequent traveller
		places(1, 2),       // overlapping
		places(3),          // unique place
		places(4, 5, 6, 7), // another frequent traveller
		places(0, 7),
		places(8),
		places(2, 3),
		places(9, 10),
	}}

	counter, err := recmech.GeneralCounter(db, recmech.Options{Epsilon: 1})
	if err != nil {
		log.Fatal(err)
	}
	rng := recmech.NewRand(21)
	fmt.Printf("participants: %d\n", db.NumParticipants())
	fmt.Printf("true distinct places visited: %.0f\n", counter.TrueAnswer())
	delta, err := counter.Delta()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensitivity proxy Δ: %.3f\n", delta)
	for i := 0; i < 3; i++ {
		v, err := counter.Release(rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("private release %d (ε = 1): %.2f\n", i+1, v)
	}
	fmt.Println("\n(the coverage query is monotone but not linear — only the")
	fmt.Println(" general mechanism of §4.2 applies, at 2^|P| preprocessing)")
}
