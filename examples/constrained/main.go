// Constrained demonstrates subgraph counting with arbitrary constraints on
// the matched nodes and edges (§1.1: "our solution also allows arbitrary
// kinds of constraints imposed on any edges or nodes of the subgraph, which
// are not supported by prior works").
//
// Scenario: a collaboration network where every researcher has a field.
// We privately count triangles whose three members span at least two
// different fields ("interdisciplinary collaborations"), under node
// differential privacy.
//
// Run with: go run ./examples/constrained
package main

import (
	"fmt"
	"log"

	"recmech"
)

func main() {
	rng := recmech.NewRand(9)
	const people = 40
	g := recmech.RandomClusteredGraph(rng, people, 90, 0.6)

	// Node attribute: a research field per person.
	fields := make([]string, people)
	names := []string{"bio", "cs", "math"}
	for i := range fields {
		fields[i] = names[rng.Intn(len(names))]
	}

	interdisciplinary := func(m recmech.Match) bool {
		first := fields[m.Nodes[0]]
		for _, v := range m.Nodes[1:] {
			if fields[v] != first {
				return true
			}
		}
		return false
	}

	all, err := recmech.PatternCounter(g, recmech.NewTrianglePattern(), nil,
		recmech.Options{Epsilon: 1, Privacy: recmech.NodePrivacy})
	if err != nil {
		log.Fatal(err)
	}
	inter, err := recmech.PatternCounter(g, recmech.NewTrianglePattern(), interdisciplinary,
		recmech.Options{Epsilon: 1, Privacy: recmech.NodePrivacy})
	if err != nil {
		log.Fatal(err)
	}

	resAll, err := all.Result(rng)
	if err != nil {
		log.Fatal(err)
	}
	resInter, err := inter.Result(rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collaboration network: %d researchers, %d links\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("all triangles:                true %.0f, private %.2f\n",
		resAll.TrueAnswer, resAll.Value)
	fmt.Printf("interdisciplinary triangles:  true %.0f, private %.2f\n",
		resInter.TrueAnswer, resInter.Value)
	fmt.Println("\n(each release is node-differentially private with ε = 1;")
	fmt.Println(" the constraint is applied before annotation, so the privacy")
	fmt.Println(" guarantee covers the constrained count exactly)")
}
