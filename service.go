package recmech

// The serving layer (internal/service, served by cmd/recmechd) re-exported
// for importers: a concurrent DP query service combining a dataset
// registry, a per-dataset privacy-budget accountant with atomic
// reserve/commit/refund, a bounded-worker query executor, and a release
// cache that replays recorded answers at zero additional ε.

import (
	"io"
	"net/http"

	"recmech/internal/service"
	"recmech/internal/store"
	"recmech/internal/trace"
)

// Service types, usable by importers of this package.
type (
	// Service is the concurrent DP query service (registry + accountant +
	// executor + release cache).
	Service = service.Service
	// ServiceConfig tunes a Service; the zero value is usable.
	ServiceConfig = service.Config
	// ServiceRequest is one DP query against a registered dataset.
	ServiceRequest = service.Request
	// ServiceResponse is one DP answer (only released values, never the
	// true answer).
	ServiceResponse = service.Response
	// DatasetInfo publicly describes a registered dataset.
	DatasetInfo = service.DatasetInfo
	// BudgetStatus snapshots a dataset's ε ledger.
	BudgetStatus = service.BudgetStatus
	// Store is the durable layer under a Service: an fsync'd write-ahead
	// log plus compacted snapshots for the ε ledger and recorded releases,
	// and an on-disk versioned dataset store.
	Store = store.Store
	// StoreConfig tunes a Store; only Dir is required.
	StoreConfig = store.Config
	// UploadRequest is the body of PUT /v1/datasets/{name}.
	UploadRequest = service.UploadRequest
	// AppendRequest is the body of PATCH /v1/datasets/{name}: a dataset
	// delta (new graph edges, or rows for relational tables) that advances
	// the dataset one micro-generation and re-warms its cached plans
	// incrementally instead of recompiling from scratch.
	AppendRequest = service.AppendRequest
	// DeltaCompileStats aggregates the incremental-compile telemetry (the
	// "deltaCompiles" section of ServiceStats).
	DeltaCompileStats = service.DeltaCompileStats
	// BudgetError is the typed rejection of an over-budget query; it
	// matches ErrBudgetExhausted under errors.Is.
	BudgetError = service.BudgetError
	// BatchRequest is the body of POST /v2/jobs: queries admitted
	// atomically against the budget and executed asynchronously.
	BatchRequest = service.BatchRequest
	// JobInfo snapshots one async batch job (state plus per-item results).
	JobInfo = service.JobInfo
	// JobItemInfo snapshots one query within a job.
	JobItemInfo = service.JobItemInfo
	// PrepareInfo reports a POST /v2/prepare outcome (plan warmed, zero ε).
	PrepareInfo = service.PrepareInfo
	// AdviseRequest is the body of POST /v2/advise: a workload plus the
	// accuracy question (error at ε, and optionally ε for a target error).
	AdviseRequest = service.AdviseRequest
	// AdviseInfo answers an accuracy question at zero ε (Theorem 1 bound).
	AdviseInfo = service.AdviseInfo
	// AccuracyInfo is one evaluated Theorem 1 utility profile.
	AccuracyInfo = service.AccuracyInfo
	// EpsilonAdvice is the inverse answer: the smallest ε meeting a target
	// error, with the profile achieved there.
	EpsilonAdvice = service.EpsilonAdvice
	// AccuracyFamilyStats aggregates per-release accuracy telemetry for one
	// workload family (the "accuracy" section of ServiceStats).
	AccuracyFamilyStats = service.AccuracyFamilyStats
	// EstimateInfo is a sampled plan's estimator contract (method, samples,
	// concentration bound — never the estimate value itself).
	EstimateInfo = service.EstimateInfo
	// EstimatorStats aggregates estimator-tier releases (the "estimator"
	// section of ServiceStats).
	EstimatorStats = service.EstimatorStats
	// ServiceStats is the service-wide observability snapshot returned by
	// (*Service).Stats and GET /v1/stats.
	ServiceStats = service.ServiceStats
	// DatasetStats is the per-dataset observability snapshot returned by
	// (*Service).DatasetStats and GET /v1/datasets/{name}/stats.
	DatasetStats = service.DatasetStats
	// AccessLogger writes one structured line (JSON or text) per HTTP
	// request; construct with NewAccessLogger, apply with WithAccessLog.
	AccessLogger = service.AccessLogger
	// AccessEntry is one access-log record.
	AccessEntry = service.AccessEntry
	// TraceSummary summarizes one retained per-query trace, as listed by
	// (*Service).Traces and GET /v1/traces.
	TraceSummary = trace.Summary
	// TraceData is one trace's full span tree, as returned by
	// (*Service).Trace and GET /v1/traces/{id}.
	TraceData = trace.TraceData
	// TraceSpanNode is one node of a TraceData span tree.
	TraceSpanNode = trace.SpanNode
	// CompileStats aggregates fresh plan-compile profiles (the "compiles"
	// section of ServiceStats).
	CompileStats = service.CompileStats
)

// Sentinel errors of the serving layer, for errors.Is checks.
var (
	// ErrBudgetExhausted rejects a query whose ε cannot be reserved.
	ErrBudgetExhausted = service.ErrBudgetExhausted
	// ErrUnknownDataset rejects a query against an unregistered dataset.
	ErrUnknownDataset = service.ErrUnknownDataset
	// ErrServiceBadRequest rejects a malformed or inapplicable request.
	ErrServiceBadRequest = service.ErrBadRequest
	// ErrUnknownJob rejects a lookup or cancellation of an unretained job.
	ErrUnknownJob = service.ErrUnknownJob
	// ErrJobFinished rejects cancellation of a job already terminal.
	ErrJobFinished = service.ErrJobFinished
	// ErrRequestTooLarge rejects an oversized request body (HTTP 413).
	ErrRequestTooLarge = service.ErrRequestTooLarge
	// ErrUnknownTrace rejects a lookup of an unretained trace ID.
	ErrUnknownTrace = service.ErrUnknownTrace
	// ErrInvalidTail rejects an accuracy request whose tail parameter c is
	// not positive and finite.
	ErrInvalidTail = service.ErrInvalidTail
	// ErrInvalidMode rejects a bad compile-mode selection (unknown mode, a
	// sample budget out of range, or sampled mode on a SQL workload).
	ErrInvalidMode = service.ErrInvalidMode
	// ErrAccuracyDisabled rejects tenant-facing accuracy requests on a
	// service without the ExposeAccuracy opt-in (the Theorem 1 bound is
	// data-dependent; see DESIGN.md).
	ErrAccuracyDisabled = service.ErrAccuracyDisabled
)

// Job lifecycle states reported by JobInfo.State.
const (
	JobStateQueued   = service.JobStateQueued
	JobStateRunning  = service.JobStateRunning
	JobStateDone     = service.JobStateDone
	JobStateFailed   = service.JobStateFailed
	JobStateCanceled = service.JobStateCanceled
)

// Query kinds accepted by ServiceRequest.Kind.
const (
	KindSQL        = service.KindSQL
	KindTriangles  = service.KindTriangles
	KindKStars     = service.KindKStars
	KindKTriangles = service.KindKTriangles
	KindPattern    = service.KindPattern
)

// Compile modes accepted by ServiceRequest.Mode: the server picks the tier
// ("auto", the default), exhaustive enumeration ("exact"), or the sampling
// estimator ("sampled"); see ServiceConfig.EstimateThreshold.
const (
	ModeAuto    = service.ModeAuto
	ModeExact   = service.ModeExact
	ModeSampled = service.ModeSampled
)

// NewService returns an empty in-memory DP query service; register datasets
// with AddGraph / AddRelational, then answer with Query.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenStore opens (creating if needed) a durable store rooted at dir with
// default tuning, recovering the budget ledger to the last complete
// journal record.
func OpenStore(dir string) (*Store, error) { return store.Open(store.Config{Dir: dir}) }

// OpenStoreConfig is OpenStore with full tuning options (compaction
// threshold, release retention, fsync policy).
func OpenStoreConfig(cfg StoreConfig) (*Store, error) { return store.Open(cfg) }

// NewServiceWithStore returns a DP query service whose budget ledger,
// recorded releases, and uploaded datasets survive restarts — including a
// SIGKILL: every ε transition is journalled before it applies, so recovery
// can only shrink the remaining budget, never re-grant spent ε. The second
// result carries per-dataset load warnings (the service always comes up).
func NewServiceWithStore(cfg ServiceConfig, st *Store) (*Service, []error) {
	return service.NewWithStore(cfg, st)
}

// NewServiceHandler adapts a Service to the HTTP/JSON API cmd/recmechd
// serves: the v2 compile/execute lifecycle (POST /v2/query, POST
// /v2/prepare, the zero-ε accuracy endpoint POST /v2/advise, the async
// batch endpoints POST/GET/DELETE /v2/jobs…), the
// wire-compatible v1 shims (POST /v1/query, GET /v1/datasets, GET
// /v1/budget/{dataset}, GET /healthz), the mutating admin endpoints PUT
// and DELETE /v1/datasets/{name}, and the observability endpoints (GET
// /metrics in Prometheus text format, GET /v1/stats, GET
// /v1/datasets/{name}/stats, and the per-query traces at GET /v1/traces and
// GET /v1/traces/{id}) — expose the handler accordingly. See API.md for the
// full reference.
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }

// NewAccessLogger returns a logger writing one structured access-log line
// per request to w, in format "json" or "text".
func NewAccessLogger(w io.Writer, format string) (*AccessLogger, error) {
	return service.NewAccessLogger(w, format)
}

// WithAccessLog wraps an HTTP handler (typically NewServiceHandler's) so
// every request emits one access-log line: method, path, dataset, ε,
// status, duration, and the privacy-budget outcome.
func WithAccessLog(h http.Handler, l *AccessLogger) http.Handler {
	return service.WithAccessLog(h, l)
}
