package recmech

// The serving layer (internal/service, served by cmd/recmechd) re-exported
// for importers: a concurrent DP query service combining a dataset
// registry, a per-dataset privacy-budget accountant with atomic
// reserve/commit/refund, a bounded-worker query executor, and a release
// cache that replays recorded answers at zero additional ε.

import (
	"net/http"

	"recmech/internal/service"
)

// Service types, usable by importers of this package.
type (
	// Service is the concurrent DP query service (registry + accountant +
	// executor + release cache).
	Service = service.Service
	// ServiceConfig tunes a Service; the zero value is usable.
	ServiceConfig = service.Config
	// ServiceRequest is one DP query against a registered dataset.
	ServiceRequest = service.Request
	// ServiceResponse is one DP answer (only released values, never the
	// true answer).
	ServiceResponse = service.Response
	// DatasetInfo publicly describes a registered dataset.
	DatasetInfo = service.DatasetInfo
	// BudgetStatus snapshots a dataset's ε ledger.
	BudgetStatus = service.BudgetStatus
	// BudgetError is the typed rejection of an over-budget query; it
	// matches ErrBudgetExhausted under errors.Is.
	BudgetError = service.BudgetError
)

// Sentinel errors of the serving layer, for errors.Is checks.
var (
	// ErrBudgetExhausted rejects a query whose ε cannot be reserved.
	ErrBudgetExhausted = service.ErrBudgetExhausted
	// ErrUnknownDataset rejects a query against an unregistered dataset.
	ErrUnknownDataset = service.ErrUnknownDataset
	// ErrServiceBadRequest rejects a malformed or inapplicable request.
	ErrServiceBadRequest = service.ErrBadRequest
)

// Query kinds accepted by ServiceRequest.Kind.
const (
	KindSQL        = service.KindSQL
	KindTriangles  = service.KindTriangles
	KindKStars     = service.KindKStars
	KindKTriangles = service.KindKTriangles
	KindPattern    = service.KindPattern
)

// NewService returns an empty DP query service; register datasets with
// AddGraph / AddRelational, then answer with Query.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceHandler adapts a Service to the HTTP/JSON API cmd/recmechd
// serves (POST /v1/query, GET /v1/datasets, GET /v1/budget/{dataset},
// GET /healthz).
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }
