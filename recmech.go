// Package recmech is a from-scratch Go implementation of the recursive
// mechanism of Chen & Zhou, "Recursive Mechanism: Towards Node Differential
// Privacy and Unrestricted Joins" (SIGMOD 2013, arXiv:1304.4795) — an
// ε-differentially private mechanism for linear statistics over the output
// of positive relational-algebra queries, including unrestricted joins, and
// in particular the first node-differentially-private subgraph counting
// algorithm for arbitrary subgraphs.
//
// The package exposes three layers:
//
//   - Graph statistics: CountTriangles / CountKStars / CountKTriangles /
//     CountPattern release differentially private subgraph counts under node
//     or edge privacy.
//   - K-relations: build a provenance-annotated relation with the positive
//     relational algebra (krel aliases below) and release any non-negative
//     linear statistic of it with QueryRelation.
//   - The mechanism itself: Counter gives repeated releases and access to
//     the deterministic sensitivity proxy Δ for experiment harnesses.
//
// Internals (the LP solver, the relaxation φ, the sequences H and G) live in
// internal/ packages; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduction of every table and figure.
package recmech

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"recmech/internal/boolexpr"
	"recmech/internal/graph"
	"recmech/internal/krel"
	"recmech/internal/mechanism"
	"recmech/internal/noise"
	"recmech/internal/query"
	"recmech/internal/subgraph"
)

// Aliases re-exporting the building blocks needed to use the public API.
// (Aliases to internal types are deliberately part of the API surface: the
// named types remain usable by importers of this package.)
type (
	// Graph is a simple undirected graph (see internal/graph).
	Graph = graph.Graph
	// Edge is an undirected edge with U < V.
	Edge = graph.Edge
	// Pattern is a connected query subgraph for CountPattern.
	Pattern = subgraph.Pattern
	// Match is one subgraph occurrence (for constraints).
	Match = subgraph.Match
	// Privacy selects node or edge differential privacy.
	Privacy = subgraph.Privacy
	// Relation is a K-relation (provenance-annotated relation).
	Relation = krel.Relation
	// Tuple is a relation tuple.
	Tuple = krel.Tuple
	// Sensitive pairs a relation with its participant universe.
	Sensitive = krel.Sensitive
	// LinearQuery weights tuples for linear statistics.
	LinearQuery = krel.LinearQuery
	// Universe names participant variables.
	Universe = boolexpr.Universe
	// Expr is a positive Boolean annotation.
	Expr = boolexpr.Expr
	// Params are the low-level mechanism parameters of Theorem 1.
	Params = mechanism.Params
)

// Privacy models for subgraph counting.
const (
	NodePrivacy = subgraph.NodePrivacy
	EdgePrivacy = subgraph.EdgePrivacy
)

// NewGraph returns an empty undirected graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewUniverse returns an empty participant universe.
func NewUniverse() *Universe { return boolexpr.NewUniverse() }

// NewRelation returns an empty K-relation with the given attributes.
func NewRelation(attrs ...string) *Relation { return krel.NewRelation(attrs...) }

// NewSensitive pairs a universe and a relation.
func NewSensitive(u *Universe, r *Relation) *Sensitive { return krel.NewSensitive(u, r) }

// Count weights every tuple 1.
func Count(t Tuple) float64 { return krel.CountQuery(t) }

// NewRand returns a seeded RNG for reproducible releases.
func NewRand(seed int64) *rand.Rand { return noise.NewRand(seed) }

// Options configure a differentially private release. The zero value is not
// valid; use an Epsilon > 0. Leave Params nil to use the paper's defaults
// (θ = 1, β = ε/5, µ = 0.5 edge / 1.0 node, ε split evenly).
type Options struct {
	Epsilon float64
	Privacy Privacy
	Params  *Params // optional override of all low-level parameters
}

func (o Options) params() (Params, error) {
	if o.Params != nil {
		return *o.Params, o.Params.Validate()
	}
	if o.Epsilon <= 0 {
		return Params{}, fmt.Errorf("recmech: Epsilon must be positive, got %v", o.Epsilon)
	}
	return mechanism.DefaultParams(o.Epsilon, o.Privacy == NodePrivacy), nil
}

// Result is a differentially private release together with the non-private
// context an experimenter usually wants next to it. Only Value is safe to
// publish.
type Result struct {
	Value        float64 // the differentially private answer
	TrueAnswer   float64 // exact count — NOT private
	Delta        float64 // deterministic sensitivity proxy Δ — NOT private
	Participants int     // |P|
	Tuples       int     // |supp(R)|
}

// Counter produces repeated differentially private releases for one
// prepared query. Each call to Release spends the full privacy budget again;
// sharing a Counter across releases only amortizes computation (useful in
// error-distribution experiments), it does not compose budgets.
type Counter struct {
	core  *mechanism.Core
	truth float64
	nPart int
	size  int
}

// NewCounter prepares the recursive mechanism for an arbitrary sensitive
// K-relation and linear query.
func NewCounter(s *Sensitive, q LinearQuery, opts Options) (*Counter, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	seq, err := mechanism.NewEfficientFromSensitive(s, q)
	if err != nil {
		return nil, err
	}
	core, err := mechanism.NewCore(seq, p)
	if err != nil {
		return nil, err
	}
	if err := core.Prepare(); err != nil {
		return nil, err
	}
	return &Counter{
		core:  core,
		truth: s.TrueAnswer(q),
		nPart: s.NumParticipants(),
		size:  s.Rel.Size(),
	}, nil
}

// Release draws one ε-differentially private answer.
func (c *Counter) Release(rng *rand.Rand) (float64, error) {
	return c.core.Release(rng)
}

// Result bundles one release with the non-private context.
func (c *Counter) Result(rng *rand.Rand) (Result, error) {
	v, err := c.core.Release(rng)
	if err != nil {
		return Result{}, err
	}
	delta, err := c.core.Delta()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Value:        v,
		TrueAnswer:   c.truth,
		Delta:        delta,
		Participants: c.nPart,
		Tuples:       c.size,
	}, nil
}

// TrueAnswer returns the exact (non-private) answer.
func (c *Counter) TrueAnswer() float64 { return c.truth }

// Delta returns the deterministic sensitivity proxy Δ (non-private).
func (c *Counter) Delta() (float64, error) { return c.core.Delta() }

// ---- Subgraph counting entry points ----

// TriangleCounter prepares node- or edge-private triangle counting on g.
func TriangleCounter(g *Graph, opts Options) (*Counter, error) {
	return NewCounter(subgraph.TriangleRelation(g, opts.Privacy), Count, opts)
}

// KStarCounter prepares k-star counting.
func KStarCounter(g *Graph, k int, opts Options) (*Counter, error) {
	return NewCounter(subgraph.KStarRelation(g, k, opts.Privacy), Count, opts)
}

// KTriangleCounter prepares k-triangle counting.
func KTriangleCounter(g *Graph, k int, opts Options) (*Counter, error) {
	return NewCounter(subgraph.KTriangleRelation(g, k, opts.Privacy), Count, opts)
}

// PatternCounter prepares counting of an arbitrary connected pattern,
// optionally filtered by a constraint on the matched nodes/edges.
func PatternCounter(g *Graph, p Pattern, constraint func(Match) bool, opts Options) (*Counter, error) {
	return NewCounter(subgraph.PatternRelation(g, p, opts.Privacy, constraint), Count, opts)
}

// CountTriangles is the one-call convenience wrapper: prepare, release once.
func CountTriangles(g *Graph, opts Options, rng *rand.Rand) (Result, error) {
	c, err := TriangleCounter(g, opts)
	if err != nil {
		return Result{}, err
	}
	return c.Result(rng)
}

// CountKStars releases a differentially private k-star count.
func CountKStars(g *Graph, k int, opts Options, rng *rand.Rand) (Result, error) {
	c, err := KStarCounter(g, k, opts)
	if err != nil {
		return Result{}, err
	}
	return c.Result(rng)
}

// CountKTriangles releases a differentially private k-triangle count.
func CountKTriangles(g *Graph, k int, opts Options, rng *rand.Rand) (Result, error) {
	c, err := KTriangleCounter(g, k, opts)
	if err != nil {
		return Result{}, err
	}
	return c.Result(rng)
}

// CountPattern releases a differentially private count of an arbitrary
// connected subgraph pattern.
func CountPattern(g *Graph, p Pattern, opts Options, rng *rand.Rand) (Result, error) {
	c, err := PatternCounter(g, p, nil, opts)
	if err != nil {
		return Result{}, err
	}
	return c.Result(rng)
}

// QueryRelation releases a differentially private linear statistic of an
// arbitrary sensitive K-relation (e.g. the output of a positive relational
// algebra pipeline over annotated base tables).
func QueryRelation(s *Sensitive, q LinearQuery, opts Options, rng *rand.Rand) (Result, error) {
	c, err := NewCounter(s, q, opts)
	if err != nil {
		return Result{}, err
	}
	return c.Result(rng)
}

// ---- Relational algebra re-exports ----

// Union returns R1 ∪ R2 (annotations combine with ∨).
func Union(r1, r2 *Relation) *Relation { return krel.Union(r1, r2) }

// Project returns π_attrs(R) (merged annotations combine with ∨).
func Project(r *Relation, attrs ...string) *Relation { return krel.Project(r, attrs...) }

// SelectWhere returns σ_pred(R).
func SelectWhere(r *Relation, pred func(get func(attr string) string) bool) *Relation {
	return krel.Select(r, pred)
}

// NaturalJoin returns R1 ⋈ R2 (annotations combine with ∧).
func NaturalJoin(r1, r2 *Relation) *Relation { return krel.Join(r1, r2) }

// RenameAttrs returns ρ(R) with attributes renamed per the mapping.
func RenameAttrs(r *Relation, mapping map[string]string) *Relation {
	return krel.Rename(r, mapping)
}

// AndVars / OrVars / VarOf build annotations for hand-constructed base
// tables: VarOf allocates/looks up a participant variable by name.
func VarOf(u *Universe, name string) *Expr { return boolexpr.NewVar(u.Var(name)) }

// AndExprs is the conjunction of annotations (participant AND participant).
func AndExprs(xs ...*Expr) *Expr { return boolexpr.And(xs...) }

// OrExprs is the disjunction of annotations.
func OrExprs(xs ...*Expr) *Expr { return boolexpr.Or(xs...) }

// ---- Pattern constructors ----

// NewPattern validates and returns a connected query pattern on k nodes.
func NewPattern(k int, edges []Edge) Pattern { return subgraph.NewPattern(k, edges) }

// NewTrianglePattern returns the triangle pattern.
func NewTrianglePattern() Pattern { return subgraph.TrianglePattern() }

// NewKStarPattern returns the k-star pattern (node 0 is the center).
func NewKStarPattern(k int) Pattern { return subgraph.KStarPattern(k) }

// NewKTrianglePattern returns the k-triangle pattern (shared edge {0,1}).
func NewKTrianglePattern(k int) Pattern { return subgraph.KTrianglePattern(k) }

// ---- Graph I/O and generators ----

// ReadGraph parses an edge-list ("u v" lines, optional "# nodes N" header).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes the edge-list format ReadGraph parses.
func WriteGraph(w io.Writer, g *Graph) error { return g.WriteEdgeList(w) }

// RandomGraph generates a G(n, p)-style graph with the given expected
// average degree, the synthetic workload of the paper's §6.1.
func RandomGraph(rng *rand.Rand, n int, avgdeg float64) *Graph {
	return graph.RandomAverageDegree(rng, n, avgdeg)
}

// RandomClusteredGraph generates an n-node, m-edge graph whose triangle
// density is steered by triadFraction ∈ [0,1].
func RandomClusteredGraph(rng *rand.Rand, n, m int, triadFraction float64) *Graph {
	return graph.RandomClustered(rng, n, m, triadFraction)
}

// NormalizeDNF returns a copy of s with every annotation converted to
// canonical irredundant DNF — the alternative safe annotation scheme of
// §5.2. It deduplicates variables inside clauses (the raw relational-algebra
// pipeline repeats them), capping every φ-sensitivity at 1, which tightens
// the mechanism's error bound. maxClauses ≤ 0 uses a default budget.
func NormalizeDNF(s *Sensitive, maxClauses int) (*Sensitive, error) {
	return s.ToDNF(maxClauses)
}

// QuerySigned releases a linear statistic whose weights may be negative by
// the decomposition of §3.2: q(t) = max(0, q(t)) − max(0, −q(t)). Each
// component is released with half the budget, so the total privacy cost is
// still opts.Epsilon (sequential composition); the error is the sum of the
// two components' errors.
func QuerySigned(s *Sensitive, q LinearQuery, opts Options, rng *rand.Rand) (Result, error) {
	if opts.Params != nil {
		return Result{}, fmt.Errorf("recmech: QuerySigned manages the budget split itself; set Epsilon, not Params")
	}
	half := opts
	half.Epsilon = opts.Epsilon / 2
	pos := func(t Tuple) float64 { return math.Max(0, q(t)) }
	neg := func(t Tuple) float64 { return math.Max(0, -q(t)) }
	rp, err := QueryRelation(s, pos, half, rng)
	if err != nil {
		return Result{}, err
	}
	rn, err := QueryRelation(s, neg, half, rng)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Value:        rp.Value - rn.Value,
		TrueAnswer:   rp.TrueAnswer - rn.TrueAnswer,
		Delta:        math.Max(rp.Delta, rn.Delta),
		Participants: rp.Participants,
		Tuples:       rp.Tuples,
	}, nil
}

// ---- SQL-like query front end ----

// QueryDatabase is a catalogue of named annotated tables for RunQuery.
type QueryDatabase = query.Database

// NewQueryDatabase returns an empty table catalogue.
func NewQueryDatabase() *QueryDatabase { return query.NewDatabase() }

// RunQuery parses and evaluates a SQL-like positive relational-algebra query
// (SELECT/FROM/WHERE/UNION; multiple FROM sources natural-join) against the
// catalogue, returning the annotated output relation. Pair the result with
// the universe the tables were loaded under and release a statistic with
// QueryRelation.
func RunQuery(db *QueryDatabase, src string) (*Relation, error) {
	return query.Run(db, src)
}

// LoadTable parses the annotated-table text format ("attr names" header,
// then "values… @ annotation" rows) with variables resolved in u.
func LoadTable(r io.Reader, u *Universe) (*Relation, error) {
	return query.LoadTable(r, u)
}

// WriteTable renders a relation in the format LoadTable parses.
func WriteTable(w io.Writer, rel *Relation, u *Universe) error {
	return query.WriteTable(w, rel, u)
}

// ---- The general mechanism of §4.2 ----

// MonotonicDatabase is the abstract sensitive database (P, M) of
// Definition 5 for the general (inefficient) mechanism: subsets of at most
// 24 participants are bitmasks, and Query must be monotone with Query(0)=0.
type MonotonicDatabase = mechanism.MonotonicDatabase

// GeneralCounter prepares the general recursive mechanism of §4.2, which
// answers ANY monotonic query — not only linear statistics of K-relations —
// at exponential preprocessing cost (the full subset lattice is evaluated).
// Its bounding sequence is exact (G̃S, a 1-bounding sequence), so for small
// participant sets it is also the accuracy gold standard.
func GeneralCounter(db MonotonicDatabase, opts Options) (*Counter, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	gen, err := mechanism.NewGeneral(db)
	if err != nil {
		return nil, err
	}
	core, err := mechanism.NewCore(gen, p)
	if err != nil {
		return nil, err
	}
	if err := core.Prepare(); err != nil {
		return nil, err
	}
	truth, err := core.TrueAnswer()
	if err != nil {
		return nil, err
	}
	return &Counter{
		core:  core,
		truth: truth,
		nPart: db.NumParticipants(),
	}, nil
}
